package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/storage"
)

// LocalCluster runs N cluster nodes in one process, each with its own
// loopback HTTP server — real node-to-node HTTP/JSON, no simulation.
// Tests, E14 and examples/distcluster use it to stand up a cluster in
// milliseconds; Kill and Revive exercise failover and snapshot warm-up.
type LocalCluster struct {
	base Config
	rows []storage.Row

	mu      sync.Mutex
	nodes   map[string]*Node
	urls    map[string]string
	servers map[string]*http.Server
	addrs   map[string]string
	ids     []string
}

// StartLocal boots n nodes named "n0".."n<k-1>" on loopback listeners,
// loads rows into each (every node keeps only the partitions the ring
// assigns it), and starts their HTTP servers. base supplies the shared
// cluster settings; its ID/Peers are filled per node.
func StartLocal(n int, base Config, rows []storage.Row) (*LocalCluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: local cluster needs >= 1 node, got %d", n)
	}
	if base.Partitions <= 0 {
		// Pin the partition count now: the default derives from the peer
		// count, and a later Join must NOT shift it (partition identity
		// is what rebalancing moves around).
		base.Partitions = 2 * n
	}
	lc := &LocalCluster{
		base:    base,
		rows:    rows,
		nodes:   make(map[string]*Node),
		urls:    make(map[string]string),
		servers: make(map[string]*http.Server),
		addrs:   make(map[string]string),
	}
	listeners := make(map[string]net.Listener)
	for i := 0; i < n; i++ {
		id := "n" + strconv.Itoa(i)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			lc.Close()
			return nil, fmt.Errorf("dist: local cluster: %w", err)
		}
		lc.ids = append(lc.ids, id)
		listeners[id] = l
		lc.addrs[id] = l.Addr().String()
		lc.urls[id] = "http://" + l.Addr().String()
	}
	for i, id := range lc.ids {
		if err := lc.startNode(id, listeners[id]); err != nil {
			// Close the listeners no server took ownership of (this
			// node's and the not-yet-started ones), then the started
			// members.
			for _, rest := range lc.ids[i:] {
				_ = listeners[rest].Close()
			}
			lc.Close()
			return nil, err
		}
	}
	return lc, nil
}

// startNode builds, loads and serves one member on l. Caller holds no
// lock during construction-time calls; concurrent map writes are
// guarded.
func (lc *LocalCluster) startNode(id string, l net.Listener) error {
	cfg := lc.base
	cfg.ID = id
	cfg.Peers = lc.Members()
	if lc.base.DataDir != "" {
		// Each member keeps its own WAL tree, like separate hosts would.
		cfg.DataDir = filepath.Join(lc.base.DataDir, id)
	}
	node, err := NewNode(cfg)
	if err != nil {
		return err
	}
	if err := node.Load(lc.rows); err != nil {
		node.Close()
		return err
	}
	srv := &http.Server{Handler: node.Handler()}
	lc.mu.Lock()
	lc.nodes[id] = node
	lc.servers[id] = srv
	lc.mu.Unlock()
	go func() { _ = srv.Serve(l) }()
	return nil
}

// Members returns the id -> base URL map (every node, dead or alive).
func (lc *LocalCluster) Members() map[string]string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := make(map[string]string, len(lc.urls))
	for id, u := range lc.urls {
		out[id] = u
	}
	return out
}

// IDs returns the member ids in boot order.
func (lc *LocalCluster) IDs() []string {
	out := make([]string, len(lc.ids))
	copy(out, lc.ids)
	return out
}

// Node returns a member by id (nil after Kill).
func (lc *LocalCluster) Node(id string) *Node {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.nodes[id]
}

// Chaos returns a member's chaos fault set (nil after Kill): tests and
// experiments arm fault-injection rules on a member's outbound RPC
// plane directly instead of going through POST /v1/debug/chaos.
func (lc *LocalCluster) Chaos(id string) *chaos.Fault {
	if n := lc.Node(id); n != nil {
		return n.Fault()
	}
	return nil
}

// URL returns a member's base URL.
func (lc *LocalCluster) URL(id string) string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.urls[id]
}

// Client builds a ring-aware client over the cluster.
func (lc *LocalCluster) Client() *Client {
	cfg := lc.base.withDefaults()
	return NewClientVNodes(lc.Members(), cfg.Replicas, cfg.Timeout, cfg.VNodes)
}

// Join boots a brand-new member on a fresh loopback listener and joins
// it to the live cluster: it fetches a live member's membership view,
// boots the newcomer from that view (so it agrees on partition count,
// replicas and vnodes without any static config), starts its HTTP
// server, and then asks the seed to orchestrate the join — stage
// moving partitions on the newcomer, catch them up through the WAL,
// and cut the cluster over to the new epoch. When Join returns, the
// newcomer is a full member and every live node routes by the new
// view.
func (lc *LocalCluster) Join(id string) error {
	lc.mu.Lock()
	if _, exists := lc.urls[id]; exists {
		lc.mu.Unlock()
		return fmt.Errorf("dist: member %q already exists", id)
	}
	var seed string
	for _, sid := range lc.ids {
		if _, alive := lc.servers[sid]; alive {
			seed = lc.urls[sid]
			break
		}
	}
	lc.mu.Unlock()
	if seed == "" {
		return fmt.Errorf("dist: no live member to join via")
	}
	mr, err := FetchMembership(seed, lc.base.Timeout)
	if err != nil {
		return fmt.Errorf("dist: join %s: %w", id, err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("dist: join %s: %w", id, err)
	}
	url := "http://" + l.Addr().String()

	cfg := lc.base
	cfg.ID = id
	cfg.Peers = map[string]string{id: url}
	cfg.InitialView = &mr.View
	cfg.Partitions = mr.Partitions
	cfg.Replicas = mr.Replicas
	cfg.VNodes = mr.VNodes
	if lc.base.DataDir != "" {
		cfg.DataDir = filepath.Join(lc.base.DataDir, id)
	}
	node, err := NewNode(cfg)
	if err != nil {
		_ = l.Close()
		return err
	}
	// Load with the full base set: the joiner is not in its boot view,
	// so ownership filtering keeps nothing — its partitions arrive via
	// the migration path below, exactly as they would on a real host.
	if err := node.Load(lc.rows); err != nil {
		node.Close()
		_ = l.Close()
		return err
	}
	srv := &http.Server{Handler: node.Handler()}
	go func() { _ = srv.Serve(l) }()

	teardown := func() {
		_ = srv.Close()
		node.Close()
	}
	body, err := json.Marshal(JoinRequest{ID: id, URL: url})
	if err != nil {
		teardown()
		return err
	}
	resp, err := http.Post(seed+"/v1/join", "application/json", bytes.NewReader(body))
	if err != nil {
		teardown()
		return fmt.Errorf("dist: join %s: %w", id, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		teardown()
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("dist: join %s: HTTP %d: %s", id, resp.StatusCode, e.Error)
	}
	lc.mu.Lock()
	lc.ids = append(lc.ids, id)
	lc.addrs[id] = l.Addr().String()
	lc.urls[id] = url
	lc.nodes[id] = node
	lc.servers[id] = srv
	lc.mu.Unlock()
	return nil
}

// Leave gracefully retires a member: another live member orchestrates
// the leave (migrating the leaver's partitions to the survivors and
// cutting over to a view without it), then the leaver's HTTP server
// drains in-flight requests and the node shuts down — finishing queued
// replication acks before it goes. The id is released for reuse.
func (lc *LocalCluster) Leave(id string) error {
	lc.mu.Lock()
	node := lc.nodes[id]
	srv := lc.servers[id]
	var via string
	for _, sid := range lc.ids {
		if sid == id {
			continue
		}
		if _, alive := lc.servers[sid]; alive {
			via = lc.urls[sid]
			break
		}
	}
	lc.mu.Unlock()
	if node == nil || srv == nil {
		return fmt.Errorf("dist: member %q is not running", id)
	}
	if via == "" {
		return fmt.Errorf("dist: no surviving member to orchestrate leave of %q", id)
	}
	body, err := json.Marshal(LeaveRequest{ID: id})
	if err != nil {
		return err
	}
	resp, err := http.Post(via+"/v1/leave", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("dist: leave %s: %w", id, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("dist: leave %s: HTTP %d: %s", id, resp.StatusCode, e.Error)
	}
	lc.mu.Lock()
	delete(lc.servers, id)
	delete(lc.nodes, id)
	delete(lc.urls, id)
	delete(lc.addrs, id)
	for i, sid := range lc.ids {
		if sid == id {
			lc.ids = append(lc.ids[:i], lc.ids[i+1:]...)
			break
		}
	}
	lc.mu.Unlock()
	// Drain in-flight HTTP before closing the node: the leaver keeps
	// serving as a retired donor/ack sink until every started request
	// completes, so no caller sees a dropped connection.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
	}
	node.Close()
	return nil
}

// Kill abruptly stops a member: its HTTP server closes immediately,
// dropping in-flight connections — the crash the failover paths must
// mask. The member's address stays reserved so Revive can bring it back.
func (lc *LocalCluster) Kill(id string) {
	lc.mu.Lock()
	srv := lc.servers[id]
	node := lc.nodes[id]
	delete(lc.servers, id)
	delete(lc.nodes, id)
	lc.mu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
	if node != nil {
		node.Close()
	}
}

// Revive restarts a killed member on its original address with a fresh
// node: it reloads the base data partitions, replays the member's own
// WAL segments (when the cluster runs with a DataDir), fetches the log
// tail it missed from peer holders, and — when warmFrom is a live
// member id — imports that member's agent snapshots so the replica
// predicts immediately (model snapshot + log tail instead of a full
// retrain). It returns the shipped snapshot bytes.
func (lc *LocalCluster) Revive(id, warmFrom string) (int64, error) {
	lc.mu.Lock()
	addr, ok := lc.addrs[id]
	_, alive := lc.servers[id]
	donor := lc.urls[warmFrom]
	lc.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("dist: unknown member %q", id)
	}
	if alive {
		return 0, fmt.Errorf("dist: member %q is still running", id)
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return 0, fmt.Errorf("dist: revive %s: %w", id, err)
	}
	if err := lc.startNode(id, l); err != nil {
		return 0, err
	}
	if lc.base.DataDir != "" {
		// Log-tail catch-up: fetch the batches this member missed while
		// it was down (best effort — dead peers are skipped).
		_, _ = lc.Node(id).CatchUp()
	}
	if warmFrom == "" {
		return 0, nil
	}
	if donor == "" {
		return 0, fmt.Errorf("dist: unknown warm-up donor %q", warmFrom)
	}
	return lc.Node(id).WarmFrom(donor)
}

// ReviveCold restarts a killed member like Revive but WITHOUT the
// log-tail catch-up or model warm-up: the node replays only its own
// surviving WAL segments, so batches ingested while it was down stay
// missing until an explicit CatchUp. The introspection experiments use
// this to observe nonzero replication lag in the status plane before
// demonstrating that catch-up drains it.
func (lc *LocalCluster) ReviveCold(id string) error {
	lc.mu.Lock()
	addr, ok := lc.addrs[id]
	_, alive := lc.servers[id]
	lc.mu.Unlock()
	if !ok {
		return fmt.Errorf("dist: unknown member %q", id)
	}
	if alive {
		return fmt.Errorf("dist: member %q is still running", id)
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: revive %s: %w", id, err)
	}
	return lc.startNode(id, l)
}

// Close stops every member and drains their schedulers.
func (lc *LocalCluster) Close() {
	lc.mu.Lock()
	servers := lc.servers
	nodes := lc.nodes
	lc.servers = make(map[string]*http.Server)
	lc.nodes = make(map[string]*Node)
	lc.mu.Unlock()
	for _, srv := range servers {
		_ = srv.Close()
	}
	for _, n := range nodes {
		n.Close()
	}
}
