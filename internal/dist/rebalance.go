package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/ingest"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/storage"
)

// This file is the rebalance orchestrator: live join/leave with
// minimal key movement, partition migration by snapshot-ship plus
// WAL-tail catch-up, and the atomic ownership cutover.
//
// Migration state machine, per moving partition:
//
//	staged    the gainer fetched a donor's consistent snapshot (rows +
//	          base-row count + last ingest sequence) ahead of the view
//	          change; ingest keeps flowing to the old owners
//	installed the gainer applied the new view: the staged rows became a
//	          live partition (WAL reset + re-seeded with the ingested
//	          tail), the member pointer swapped — new requests route to
//	          the new owners
//	synced    the gainer drained the cutover delta: it fetched the WAL
//	          tail the donors accepted between staging and cutover,
//	          finishing when a donor serves a FENCED tail at the new
//	          epoch with nothing missing
//	retired   a losing owner moved the partition out of its serving
//	          maps; the retired copy keeps answering /v1/replicate,
//	          /v1/walfetch, /v1/partsnap and /v1/digest until the node
//	          closes, so in-flight acks and late catch-ups never dangle
//
// The coordinator (whichever member received /v1/join or /v1/leave)
// serialises concurrent membership changes behind rebalanceMu; view
// installs themselves serialise behind viewMu, so a node can be the
// coordinator of one change while adopting another's.

// JoinRequest is the POST /v1/join body: a new member's identity.
type JoinRequest struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// JoinResponse reports the view a join/leave produced and how many
// partition replicas moved to new owners.
type JoinResponse struct {
	View  View `json:"view"`
	Moved int  `json:"moved"`
}

// LeaveRequest is the POST /v1/leave body: the member to retire.
type LeaveRequest struct {
	ID string `json:"id"`
}

// MigratePart names one partition a gainer must stage and the donor
// URLs that hold it (primary first).
type MigratePart struct {
	Part   int      `json:"part"`
	Donors []string `json:"donors"`
}

// MigrateRequest is the coordinator→gainer POST /v1/migrate body: the
// pending view and the partitions the gainer acquires under it.
type MigrateRequest struct {
	View  View          `json:"view"`
	Parts []MigratePart `json:"parts"`
}

// MigrateResponse reports how many partitions the gainer staged.
type MigrateResponse struct {
	Staged int   `json:"staged"`
	Epoch  int64 `json:"epoch"`
}

// PartSnapRequest is the POST /v1/partsnap body: one partition's full
// snapshot for staging or repair.
type PartSnapRequest struct {
	Part  int   `json:"part"`
	Epoch int64 `json:"epoch,omitempty"`
}

// PartSnapResponse is a consistent point-in-time copy of one
// partition: every row in insertion order (base rows first, then
// ingested rows in sequence order), how many of them are base rows,
// and the last applied ingest sequence. BaseLen matters for WAL
// re-seeding: a restarted node re-lays base rows deterministically
// from the bulk dataset, so only Rows[BaseLen:] belong in the log.
type PartSnapResponse struct {
	Part    int       `json:"part"`
	LastSeq uint64    `json:"last_seq"`
	BaseLen int       `json:"base_len"`
	Rows    []WireRow `json:"rows"`
	Epoch   int64     `json:"epoch,omitempty"`
}

// RebalanceStatus is the GET /v1/rebalance body and the "rebalance"
// block of /v1/status: where this node stands in the elastic plane.
type RebalanceStatus struct {
	Epoch        int64 `json:"epoch"`
	Staged       int   `json:"staged"`
	Retired      int   `json:"retired"`
	MovedParts   int64 `json:"moved_parts"`
	LastChangeMS int64 `json:"last_change_ms"`
}

// stagedPart is a partition snapshot shipped ahead of a view change.
type stagedPart struct {
	rows    []storage.Row
	baseLen int
	lastSeq uint64
	donors  []string
	epoch   int64
}

// retiredPart is a partition this node no longer owns but retains as a
// donor and ack sink until the node closes: late replicate deliveries
// from a primary that has not yet adopted the view still land (and
// ack), and gainers can still fetch snapshots, tails and digests.
type retiredPart struct {
	mu      sync.Mutex
	rows    []storage.Row
	baseLen int
	lastSeq uint64
	wal     *ingest.Log
}

func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		serve.WriteError(w, fmt.Errorf("%w: %v", query.ErrBadQuery, err))
		return
	}
	if req.ID == "" || req.URL == "" {
		serve.WriteError(w, fmt.Errorf("%w: join needs id and url", query.ErrBadQuery))
		return
	}
	resp, err := n.orchestrate(func(cur View) (View, error) {
		if cur.has(req.ID) {
			return View{}, fmt.Errorf("dist: member %q already in the view", req.ID)
		}
		nv := cur.clone()
		nv.Epoch++
		nv.Members = append(nv.Members, Member{ID: req.ID, URL: req.URL})
		nv.normalize()
		return nv, nil
	})
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	serve.WriteJSON(w, http.StatusOK, resp)
}

func (n *Node) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req LeaveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		serve.WriteError(w, fmt.Errorf("%w: %v", query.ErrBadQuery, err))
		return
	}
	if req.ID == "" {
		serve.WriteError(w, fmt.Errorf("%w: leave needs id", query.ErrBadQuery))
		return
	}
	resp, err := n.orchestrate(func(cur View) (View, error) {
		if !cur.has(req.ID) {
			return View{}, fmt.Errorf("dist: member %q not in the view", req.ID)
		}
		if len(cur.Members) == 1 {
			return View{}, fmt.Errorf("dist: refusing to retire the last member")
		}
		nv := View{Epoch: cur.Epoch + 1}
		for _, m := range cur.Members {
			if m.ID != req.ID {
				nv.Members = append(nv.Members, m)
			}
		}
		return nv, nil
	})
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	serve.WriteJSON(w, http.StatusOK, resp)
}

func (n *Node) handleRebalance(w http.ResponseWriter, _ *http.Request) {
	serve.WriteJSON(w, http.StatusOK, n.RebalanceStatus())
}

// RebalanceStatus snapshots the node's elastic-plane progress.
func (n *Node) RebalanceStatus() RebalanceStatus {
	n.stageMu.Lock()
	staged := len(n.staged)
	n.stageMu.Unlock()
	n.retireMu.Lock()
	retired := len(n.retired)
	n.retireMu.Unlock()
	return RebalanceStatus{
		Epoch:        n.epoch(),
		Staged:       staged,
		Retired:      retired,
		MovedParts:   n.movesTotal.Load(),
		LastChangeMS: n.lastChange.Load(),
	}
}

// orchestrate runs one membership change end to end: build the next
// view, diff placement, stage every moving partition on its gainer,
// then cut over by pushing the view to the union of old and new
// members. Staging failures abort with NO view change — the staged
// copies are harmless garbage the gainers drop on their next install.
func (n *Node) orchestrate(next func(View) (View, error)) (JoinResponse, error) {
	if !n.ingestGate() {
		return JoinResponse{}, errNodeClosing
	}
	defer n.closeDone()
	n.rebalanceMu.Lock()
	defer n.rebalanceMu.Unlock()

	old := n.members()
	nv, err := next(old.view)
	if err != nil {
		return JoinResponse{}, err
	}
	nms := newMemberState(nv, n.cfg.VNodes)

	// Diff placement per partition: every new owner that was not an old
	// owner must stage the partition from the old owners (primary
	// first). A single join or leave moves at most ~1/N of partitions
	// (the ring's minimal-movement property, proven in ring_test.go).
	gainsByNode := make(map[string][]MigratePart)
	moved := 0
	for p := 0; p < n.cfg.Partitions; p++ {
		oldOwners := old.ring.Owners(partKey(p), n.cfg.Replicas)
		newOwners := nms.ring.Owners(partKey(p), n.cfg.Replicas)
		var donors []string
		for _, o := range oldOwners {
			if u := old.urls[o]; u != "" {
				donors = append(donors, u)
			}
		}
		for _, o := range newOwners {
			if containsStr(oldOwners, o) {
				continue
			}
			gainsByNode[o] = append(gainsByNode[o], MigratePart{Part: p, Donors: donors})
			moved++
		}
	}

	// Stage concurrently per gainer; abort the change on any failure.
	type stageRes struct {
		node string
		err  error
	}
	resc := make(chan stageRes, len(gainsByNode))
	for node, parts := range gainsByNode {
		go func(node string, parts []MigratePart) {
			var err error
			if node == n.id {
				err = n.stageParts(nv, parts)
			} else {
				err = n.sendMigrate(nms.urls[node], nv, parts)
			}
			resc <- stageRes{node: node, err: err}
		}(node, parts)
	}
	for range gainsByNode {
		if r := <-resc; r.err != nil {
			return JoinResponse{}, fmt.Errorf("dist: stage on %s failed (view unchanged): %w", r.node, r.err)
		}
	}

	// Cutover: adopt the view locally first (direct call — POSTing to
	// ourselves would deadlock behind our own handler limits), then push
	// it to every other old or new member. Push failures are logged, not
	// fatal: the straggler converges from the epoch stamped on its next
	// RPC.
	if err := n.applyView(nv); err != nil {
		return JoinResponse{}, fmt.Errorf("dist: apply view locally: %w", err)
	}
	targets := make(map[string]string) // id -> url
	for _, m := range old.view.Members {
		targets[m.ID] = m.URL
	}
	for _, m := range nv.Members {
		targets[m.ID] = m.URL
	}
	delete(targets, n.id)
	type pushRes struct {
		id  string
		err error
	}
	pushc := make(chan pushRes, len(targets))
	for id, url := range targets {
		go func(id, url string) {
			_, err := n.pushView(url, nv)
			pushc <- pushRes{id: id, err: err}
		}(id, url)
	}
	for range targets {
		if r := <-pushc; r.err != nil {
			n.logger.Warn("view push failed; member will converge via epoch stamps",
				"peer", r.id, "epoch", nv.Epoch, "err", r.err)
		}
	}
	n.movesTotal.Add(int64(moved))
	n.logger.Info("membership change applied",
		"epoch", nv.Epoch, "members", len(nv.Members), "moved", moved)
	return JoinResponse{View: nv, Moved: moved}, nil
}

// sendMigrate asks a gainer to stage parts for the pending view.
func (n *Node) sendMigrate(url string, v View, parts []MigratePart) error {
	if url == "" {
		return fmt.Errorf("dist: gainer has no URL")
	}
	body, err := json.Marshal(MigrateRequest{View: v, Parts: parts})
	if err != nil {
		return err
	}
	resp, err := n.hc.Post(url+"/v1/migrate", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: migrate to %s: HTTP %d: %w", url, resp.StatusCode, errPeerResponded)
	}
	return nil
}

func (n *Node) handleMigrate(w http.ResponseWriter, r *http.Request) {
	if !n.ingestGate() {
		serve.WriteJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": errNodeClosing.Error()})
		return
	}
	defer n.closeDone()
	var req MigrateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		serve.WriteError(w, fmt.Errorf("%w: %v", query.ErrBadQuery, err))
		return
	}
	if err := n.stageParts(req.View, req.Parts); err != nil {
		serve.WriteError(w, err)
		return
	}
	serve.WriteJSON(w, http.StatusOK, MigrateResponse{Staged: len(req.Parts), Epoch: n.epoch()})
}

// stageParts fetches each listed partition's snapshot from the first
// reachable donor and parks it for the coming view. Staging never
// touches the serving maps: until the view lands, the old owners keep
// serving and ingesting.
func (n *Node) stageParts(v View, parts []MigratePart) error {
	for _, mp := range parts {
		st, err := n.stageOne(v, mp)
		if err != nil {
			return err
		}
		n.stageMu.Lock()
		n.staged[mp.Part] = st
		n.stageMu.Unlock()
	}
	return nil
}

func (n *Node) stageOne(v View, mp MigratePart) (*stagedPart, error) {
	var lastErr error
	for _, durl := range mp.Donors {
		snap, err := n.fetchPartSnap(durl, mp.Part)
		if err != nil {
			lastErr = err
			continue
		}
		return &stagedPart{
			rows:    wireToRows(snap.Rows),
			baseLen: snap.BaseLen,
			lastSeq: snap.LastSeq,
			donors:  mp.Donors,
			epoch:   v.Epoch,
		}, nil
	}
	return nil, fmt.Errorf("dist: stage partition %d: no donor reachable: %w", mp.Part, lastErr)
}

// fetchPartSnap fetches one partition's snapshot from a donor.
func (n *Node) fetchPartSnap(url string, p int) (*PartSnapResponse, error) {
	body, err := json.Marshal(PartSnapRequest{Part: p, Epoch: n.epoch()})
	if err != nil {
		return nil, err
	}
	resp, err := n.hc.Post(url+"/v1/partsnap", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: partsnap %d from %s: HTTP %d: %w",
			p, url, resp.StatusCode, errPeerResponded)
	}
	var out PartSnapResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	n.noteEpoch(out.Epoch)
	return &out, nil
}

func (n *Node) handlePartSnap(w http.ResponseWriter, r *http.Request) {
	var req PartSnapRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		serve.WriteError(w, fmt.Errorf("%w: %v", query.ErrBadQuery, err))
		return
	}
	n.noteEpoch(req.Epoch)
	// Live partition: rows, baseLen and lastSeq are mutated together
	// under n.mu, so one read lock yields a consistent snapshot.
	n.mu.RLock()
	rows, held := n.parts[req.Part]
	baseLen, lastSeq := n.baseLen[req.Part], n.lastSeq[req.Part]
	if held {
		rows = rows[:len(rows):len(rows)]
	}
	n.mu.RUnlock()
	if !held {
		if rp := n.retiredPartOf(req.Part); rp != nil {
			rp.mu.Lock()
			rows = rp.rows[:len(rp.rows):len(rp.rows)]
			baseLen, lastSeq = rp.baseLen, rp.lastSeq
			rp.mu.Unlock()
			held = true
		}
	}
	if !held {
		serve.WriteJSON(w, http.StatusNotFound, map[string]string{
			"error": fmt.Sprintf("dist: node %s does not hold partition %d", n.id, req.Part),
		})
		return
	}
	serve.WriteJSON(w, http.StatusOK, PartSnapResponse{
		Part: req.Part, LastSeq: lastSeq, BaseLen: baseLen,
		Rows: rowsToWire(rows), Epoch: n.epoch(),
	})
}

// retiredPartOf returns the retired copy of p, if any.
func (n *Node) retiredPartOf(p int) *retiredPart {
	n.retireMu.Lock()
	defer n.retireMu.Unlock()
	return n.retired[p]
}

// applyView installs a newer membership view: stage-installed gains
// become live partitions, the member pointer swaps (new requests route
// on the new ring), lost partitions retire, and each gain drains its
// cutover delta from the donors. Serialised behind viewMu; an equal or
// older epoch is a no-op.
func (n *Node) applyView(nv View) error {
	if !n.ingestGate() {
		return errNodeClosing
	}
	defer n.closeDone()
	n.viewMu.Lock()
	defer n.viewMu.Unlock()
	cur := n.members()
	if nv.Epoch <= cur.view.Epoch {
		return nil
	}
	nv = nv.clone()
	nv.normalize()
	nms := newMemberState(nv, n.cfg.VNodes)

	// Diff this node's holdings against the new placement.
	var gains, losses []int
	selfIn := nv.has(n.id)
	for p := 0; p < n.cfg.Partitions; p++ {
		owned := selfIn && containsStr(nms.ring.Owners(partKey(p), n.cfg.Replicas), n.id)
		n.mu.RLock()
		_, held := n.parts[p]
		n.mu.RUnlock()
		if owned && !held {
			gains = append(gains, p)
		}
		if !owned && held {
			losses = append(losses, p)
		}
	}
	sort.Ints(gains)
	sort.Ints(losses)

	// Install every gain while holding its (new) partition lock: a
	// replicate or ingest racing the cutover blocks on the lock and
	// lands after the install, in sequence.
	type pendingSync struct {
		part   int
		mu     *sync.Mutex
		donors []string
	}
	var pending []pendingSync
	for _, p := range gains {
		st := n.takeStaged(p, cur)
		mu := &sync.Mutex{}
		mu.Lock()
		n.mu.Lock()
		n.partMu[p] = mu
		n.mu.Unlock()
		if err := n.installPartitionLocked(p, st); err != nil {
			n.mu.Lock()
			delete(n.partMu, p)
			n.mu.Unlock()
			mu.Unlock()
			n.logger.Warn("partition install failed", "part", p, "err", err)
			continue
		}
		pending = append(pending, pendingSync{part: p, mu: mu, donors: st.donors})
	}

	// The atomic cutover: requests arriving after this line route,
	// forward and sequence on the new view.
	n.member.Store(nms)
	n.lastChange.Store(time.Now().UnixMilli())

	// Retire losses: out of the serving maps (gatherLocal and the ring
	// agree the partition lives elsewhere) but retained as a donor and
	// ack sink until Close.
	for _, p := range losses {
		n.retirePartition(p)
	}

	// Drain each gain's cutover delta, releasing its lock as it syncs.
	for _, ps := range pending {
		n.finalSyncLocked(ps.part, ps.donors, nv.Epoch)
		ps.mu.Unlock()
	}
	n.logger.Info("view applied", "epoch", nv.Epoch, "members", len(nv.Members),
		"gained", len(gains), "retired", len(losses))
	return nil
}

// takeStaged claims partition p's staged snapshot for installation,
// falling back to a retired copy (a re-gain promotes it) and, as the
// self-heal of last resort for a member that never saw the migrate
// RPC, an inline stage from the old view's holders.
func (n *Node) takeStaged(p int, old *memberState) *stagedPart {
	n.stageMu.Lock()
	st := n.staged[p]
	delete(n.staged, p)
	n.stageMu.Unlock()
	if st != nil {
		return st
	}
	n.retireMu.Lock()
	rp := n.retired[p]
	delete(n.retired, p)
	n.retireMu.Unlock()
	if rp != nil {
		rp.mu.Lock()
		st = &stagedPart{rows: rp.rows, baseLen: rp.baseLen, lastSeq: rp.lastSeq}
		if rp.wal != nil {
			// installPartitionLocked reopens the same WAL directory;
			// release this handle first.
			_ = rp.wal.Close()
		}
		rp.mu.Unlock()
		return st
	}
	var donors []string
	for _, o := range old.ring.Owners(partKey(p), n.cfg.Replicas) {
		if o == n.id {
			continue
		}
		if u := old.urls[o]; u != "" {
			donors = append(donors, u)
		}
	}
	if len(donors) > 0 {
		if st, err := n.stageOne(View{Epoch: n.epoch() + 1}, MigratePart{Part: p, Donors: donors}); err == nil {
			return st
		} else {
			n.logger.Warn("inline stage failed; installing empty partition",
				"part", p, "err", err)
		}
	}
	return &stagedPart{donors: donors}
}

// installPartitionLocked makes a staged snapshot the live partition
// (the caller holds the partition's lock). Mirrors Load: rows land in
// the partition map and the columnar mirror WITHOUT AbsorbRows — the
// cluster's models already absorbed these rows when they were first
// ingested on the old owners; absorbing again would double-count.
// With durability on, the WAL is reset and re-seeded with only the
// ingested tail (rows[baseLen:]) at lastSeq: a restart re-lays base
// rows deterministically from the bulk dataset, so storing them in the
// log would replay them twice.
func (n *Node) installPartitionLocked(p int, st *stagedPart) error {
	var l *ingest.Log
	if n.cfg.DataDir != "" {
		n.mu.RLock()
		l = n.wals[p]
		n.mu.RUnlock()
		if l == nil {
			var err error
			l, err = ingest.Open(filepath.Join(n.cfg.DataDir, fmt.Sprintf("part-%d", p)),
				ingest.Options{SyncEvery: n.cfg.WALSyncEvery})
			if err != nil {
				return fmt.Errorf("dist: install partition %d: %w", p, err)
			}
		}
		if err := l.Reset(); err != nil {
			return fmt.Errorf("dist: install partition %d: %w", p, err)
		}
		if st.lastSeq > 0 {
			tail := st.rows
			if st.baseLen < len(tail) {
				tail = tail[st.baseLen:]
			} else {
				tail = nil
			}
			if err := l.Append(st.lastSeq, tail); err != nil {
				return fmt.Errorf("dist: install partition %d: %w", p, err)
			}
		}
	}
	rows := st.rows[:len(st.rows):len(st.rows)]
	cs := storage.NewColStore(-1)
	cs.Append(rows...)
	n.mu.Lock()
	prev := int64(len(n.parts[p]))
	n.parts[p] = rows
	n.cols[p] = cs
	n.baseLen[p] = st.baseLen
	n.lastSeq[p] = st.lastSeq
	n.rowsHeld += int64(len(rows)) - prev
	if l != nil {
		n.wals[p] = l
	}
	n.version++
	ver := n.version
	n.mu.Unlock()
	n.publishAbsorbed(ver)
	return nil
}

// retirePartition moves p out of the serving maps into the retired
// set. The retired copy is documented as retained-until-Close: it is
// small (one partition's rows), keeps late replicate acks and catch-up
// fetches working while the old primary converges, and the whole node
// is usually shut down shortly after a graceful leave anyway.
func (n *Node) retirePartition(p int) {
	mu := n.partLock(p)
	if mu == nil {
		return
	}
	mu.Lock()
	n.mu.Lock()
	rows := n.parts[p]
	rp := &retiredPart{
		rows:    rows,
		baseLen: n.baseLen[p],
		lastSeq: n.lastSeq[p],
		wal:     n.wals[p],
	}
	delete(n.parts, p)
	delete(n.cols, p)
	delete(n.lastSeq, p)
	delete(n.baseLen, p)
	delete(n.wals, p)
	delete(n.partMu, p)
	n.rowsHeld -= int64(len(rows))
	n.version++
	ver := n.version
	n.mu.Unlock()
	mu.Unlock()
	n.retireMu.Lock()
	n.retired[p] = rp
	n.retireMu.Unlock()
	// Cached answers may cover the departed rows: expire them.
	n.publishAbsorbed(ver)
}

// finalSyncLocked drains partition p's cutover delta (the caller holds
// p's partition lock): every batch the donors sequenced between the
// staging snapshot and the donors adopting the new view. It finishes
// when a donor serves a FENCED tail at (or past) the new epoch showing
// nothing missing — fenced means the donor held its partition lock, so
// its LastSeq cannot advance behind our back; at the new epoch the
// donor also no longer sequences fresh batches for p. On timeout it
// logs and returns: anti-entropy and gap-healing replication converge
// the remainder.
func (n *Node) finalSyncLocked(p int, donors []string, newEpoch int64) {
	deadline := time.Now().Add(3 * n.cfg.Timeout)
	self := n.members().urls[n.id]
	for time.Now().Before(deadline) {
		progress := false
		for _, durl := range donors {
			if durl == "" || durl == self {
				continue
			}
			resp, err := n.fetchTail(durl, p, n.partSeqLocked(p), 0)
			if err != nil || resp == nil {
				continue
			}
			n.noteEpoch(resp.Epoch)
			if resp.NoWAL {
				// Memory-only donor: no tail to fetch. If it is ahead,
				// re-stage wholesale from its snapshot.
				if resp.LastSeq > n.partSeqLocked(p) {
					if snap, err := n.fetchPartSnap(durl, p); err == nil && snap.LastSeq > n.partSeqLocked(p) {
						st := &stagedPart{rows: wireToRows(snap.Rows),
							baseLen: snap.BaseLen, lastSeq: snap.LastSeq}
						if err := n.installPartitionLocked(p, st); err == nil {
							progress = true
						}
					}
				}
			} else {
				for _, e := range resp.Entries {
					cur := n.partSeqLocked(p)
					if e.Seq <= cur {
						continue
					}
					if e.Seq != cur+1 {
						break
					}
					if err := n.applyBatch(p, e.Seq, wireToRows(e.Rows), true, nil); err != nil {
						n.logger.Warn("final sync apply failed", "part", p, "seq", e.Seq, "err", err)
						break
					}
					progress = true
				}
			}
			if resp.Fenced && resp.Epoch >= newEpoch && resp.LastSeq <= n.partSeqLocked(p) && !resp.Truncated {
				return
			}
		}
		if !progress {
			time.Sleep(5 * time.Millisecond)
		}
	}
	n.logger.Warn("final sync timed out; anti-entropy will converge the remainder",
		"part", p, "epoch", newEpoch)
}

// containsStr reports whether s contains v.
func containsStr(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
