package dist

import (
	"errors"
	"net"
	"net/http"
	"sync"
	"time"
)

// health tracks which peers are suspected down. A failed call marks the
// peer down for a cooldown; once the cooldown expires the peer is only
// reinstated after a successful GET /healthz probe — the same endpoint
// cmd/seaserve exposes for liveness. Both the client-side failover and
// the node-side scatter/forward paths share this tracker so one dead
// node costs at most one timeout per cooldown window instead of one per
// query.
type health struct {
	cooldown time.Duration
	probe    *http.Client

	mu      sync.Mutex
	down    map[string]time.Time // base URL -> down until
	probing map[string]bool      // base URL -> a probe is in flight
}

func newHealth(cooldown time.Duration, probeTimeout time.Duration) *health {
	if cooldown <= 0 {
		cooldown = DefaultCooldown
	}
	if probeTimeout <= 0 || probeTimeout > cooldown {
		probeTimeout = cooldown
	}
	return &health{
		cooldown: cooldown,
		probe:    &http.Client{Timeout: probeTimeout},
		down:     make(map[string]time.Time),
		probing:  make(map[string]bool),
	}
}

// markDown records a failed call to url.
func (h *health) markDown(url string) {
	h.mu.Lock()
	h.down[url] = time.Now().Add(h.cooldown)
	h.mu.Unlock()
}

// errPeerResponded wraps HTTP error-status failures: the peer answered,
// so it is alive and must not be quarantined.
var errPeerResponded = errors.New("dist: peer responded with an error status")

// suspectOn reports whether a call error indicates a dead peer
// (connection-level failure) rather than a merely slow one (timeout) or
// an alive one returning an error status. Slow must not mean dead: an
// expensive query timing out on every replica in turn would otherwise
// quarantine the whole cluster, failing even cheap node-local
// predictions until the cooldown expires.
func suspectOn(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false
	}
	return !errors.Is(err, errPeerResponded)
}

// markDownOn suspects url only for dead-peer errors (see suspectOn).
func (h *health) markDownOn(url string, err error) {
	if suspectOn(err) {
		h.markDown(url)
	}
}

// available reports whether url should be tried: healthy peers always,
// suspected peers only after the cooldown has expired AND a /healthz
// probe succeeds. At most one probe per peer is in flight: concurrent
// callers skip the peer instead of each paying the probe timeout when
// it is still dead.
func (h *health) available(url string) bool {
	h.mu.Lock()
	until, suspected := h.down[url]
	if !suspected {
		h.mu.Unlock()
		return true
	}
	if time.Now().Before(until) || h.probing[url] {
		h.mu.Unlock()
		return false
	}
	h.probing[url] = true
	h.mu.Unlock()

	ok := false
	if resp, err := h.probe.Get(url + "/healthz"); err == nil {
		resp.Body.Close()
		ok = resp.StatusCode == http.StatusOK
	}
	h.mu.Lock()
	delete(h.probing, url)
	if ok {
		delete(h.down, url)
	} else {
		h.down[url] = time.Now().Add(h.cooldown)
	}
	h.mu.Unlock()
	return ok
}
