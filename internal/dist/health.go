package dist

import (
	"errors"
	"net"
	"net/http"
	"sync"
	"time"
)

// health tracks which peers are suspected down. A failed call marks the
// peer down for a cooldown; once the cooldown expires the peer is only
// reinstated after a successful GET /healthz probe — the same endpoint
// cmd/seaserve exposes for liveness. Both the client-side failover and
// the node-side scatter/forward paths share this tracker so one dead
// node costs at most one timeout per cooldown window instead of one per
// query.
type health struct {
	cooldown time.Duration
	probe    *http.Client
	brCfg    breakerConfig

	// mu is an RWMutex because the hot path — every scatter RPC calls
	// breaker() at least twice (available + observe) — only ever READS
	// these maps once a peer's entries exist; writers are peer first
	// use, suspicion marks and probe bookkeeping, all off the common
	// case. Read-locking keeps concurrent scatter workers from
	// serialising on the tracker.
	mu       sync.RWMutex
	down     map[string]time.Time // base URL -> down until
	probing  map[string]bool      // base URL -> a probe is in flight
	breakers map[string]*breaker  // base URL -> circuit breaker
}

func newHealth(cooldown time.Duration, probeTimeout time.Duration, brCfg breakerConfig) *health {
	if cooldown <= 0 {
		cooldown = DefaultCooldown
	}
	if probeTimeout <= 0 || probeTimeout > cooldown {
		probeTimeout = cooldown
	}
	return &health{
		cooldown: cooldown,
		probe:    &http.Client{Timeout: probeTimeout},
		brCfg:    brCfg,
		down:     make(map[string]time.Time),
		probing:  make(map[string]bool),
		breakers: make(map[string]*breaker),
	}
}

// breaker returns (creating on first use) url's circuit breaker.
func (h *health) breaker(url string) *breaker {
	h.mu.RLock()
	b := h.breakers[url]
	h.mu.RUnlock()
	if b != nil {
		return b
	}
	h.mu.Lock()
	if b = h.breakers[url]; b == nil {
		b = newBreaker(h.brCfg)
		h.breakers[url] = b
	}
	h.mu.Unlock()
	return b
}

// observe records one RPC outcome against url's breaker and — for
// dead-peer errors — the suspect tracker. The breaker counts
// unreachability (timeouts, connection failures): those are the
// failures where every attempt costs a full RPC timeout, so failing
// fast is what the breaker buys. HTTP error statuses (errPeerResponded)
// feed neither side of the breaker: the peer answered promptly, the
// budgeted retry layer masks per-request failures at per-request cost,
// and tripping on them would turn a transient error burst into vetoed
// replicas and needless degraded answers. They do not close a
// half-open breaker either — recovery proof is a round trip that
// actually succeeded.
func (h *health) observe(url string, err error) {
	now := time.Now()
	if err == nil {
		h.breaker(url).success(now)
		return
	}
	if !errors.Is(err, errPeerResponded) {
		h.breaker(url).failure(now)
	}
	h.markDownOn(url, err)
}

// worstBreaker returns the worst breaker state across all peers
// (the sea_breaker_state gauge).
func (h *health) worstBreaker() int {
	h.mu.RLock()
	brs := make([]*breaker, 0, len(h.breakers))
	for _, b := range h.breakers {
		brs = append(brs, b)
	}
	h.mu.RUnlock()
	worst := breakerClosed
	for _, b := range brs {
		if s := b.snapshot(); s > worst {
			worst = s
		}
	}
	return worst
}

// breakerStates snapshots every peer's breaker state by URL.
func (h *health) breakerStates() map[string]string {
	h.mu.RLock()
	brs := make(map[string]*breaker, len(h.breakers))
	for url, b := range h.breakers {
		brs[url] = b
	}
	h.mu.RUnlock()
	out := make(map[string]string, len(brs))
	for url, b := range brs {
		out[url] = breakerStateName(b.snapshot())
	}
	return out
}

// markDown records a failed call to url.
func (h *health) markDown(url string) {
	h.mu.Lock()
	h.down[url] = time.Now().Add(h.cooldown)
	h.mu.Unlock()
}

// errPeerResponded wraps HTTP error-status failures: the peer answered,
// so it is alive and must not be quarantined.
var errPeerResponded = errors.New("dist: peer responded with an error status")

// suspectOn reports whether a call error indicates a dead peer
// (connection-level failure) rather than a merely slow one (timeout) or
// an alive one returning an error status. Slow must not mean dead: an
// expensive query timing out on every replica in turn would otherwise
// quarantine the whole cluster, failing even cheap node-local
// predictions until the cooldown expires.
func suspectOn(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false
	}
	return !errors.Is(err, errPeerResponded)
}

// markDownOn suspects url only for dead-peer errors (see suspectOn).
func (h *health) markDownOn(url string, err error) {
	if suspectOn(err) {
		h.markDown(url)
	}
}

// available reports whether url should be tried: healthy peers always,
// suspected peers only after the cooldown has expired AND a /healthz
// probe succeeds. At most one probe per peer is in flight: concurrent
// callers skip the peer instead of each paying the probe timeout when
// it is still dead. An open circuit breaker also vetoes the peer —
// callers admitted here MUST report the call's outcome via observe, or
// a half-open breaker's probe slot would leak (allow reclaims a stale
// probe after openFor as a backstop).
func (h *health) available(url string) bool {
	if !h.breaker(url).allow(time.Now()) {
		return false
	}
	h.mu.RLock()
	until, suspected := h.down[url]
	h.mu.RUnlock()
	if !suspected {
		return true
	}
	h.mu.Lock()
	until, suspected = h.down[url]
	if !suspected {
		h.mu.Unlock()
		return true
	}
	if time.Now().Before(until) || h.probing[url] {
		h.mu.Unlock()
		return false
	}
	h.probing[url] = true
	h.mu.Unlock()

	ok := false
	if resp, err := h.probe.Get(url + "/healthz"); err == nil {
		resp.Body.Close()
		ok = resp.StatusCode == http.StatusOK
	}
	h.mu.Lock()
	delete(h.probing, url)
	if ok {
		delete(h.down, url)
	} else {
		h.down[url] = time.Now().Add(h.cooldown)
	}
	h.mu.Unlock()
	return ok
}
