package dist

import (
	"sync"
	"time"
)

// Breaker state values, ordered by badness: the worst state across all
// peers feeds the sea_breaker_state gauge.
const (
	breakerClosed   = 0
	breakerHalfOpen = 1
	breakerOpen     = 2
)

// breakerConfig tunes the per-peer circuit breakers.
type breakerConfig struct {
	// minVolume is the rolling-window call count below which the
	// failure rate is not judged (a single failed call must not open a
	// breaker).
	minVolume int64
	// failureRate in [0,1] opens the breaker when the rolling window's
	// failure fraction reaches it with at least minVolume calls.
	failureRate float64
	// openFor is how long an opened breaker rejects before admitting a
	// single half-open probe.
	openFor time.Duration
}

// breakerBuckets is the rolling window length in one-second buckets.
const breakerBuckets = 10

// breaker is one peer's circuit breaker: a rolling failure-rate window
// over one-second buckets with the classic closed → open → half-open →
// closed lifecycle. Closed it counts outcomes; at failureRate over
// minVolume calls it opens and sheds every call for openFor; then it
// admits exactly one probe call — success closes it (window reset),
// failure re-opens it for another openFor.
type breaker struct {
	cfg breakerConfig

	mu       sync.Mutex
	ok       [breakerBuckets]int64
	fail     [breakerBuckets]int64
	bucketAt int64 // unix second the current bucket covers
	idx      int
	state    int
	openedAt time.Time
	probing  bool
	probedAt time.Time
}

func newBreaker(cfg breakerConfig) *breaker {
	if cfg.minVolume <= 0 {
		cfg.minVolume = 8
	}
	if cfg.failureRate <= 0 {
		cfg.failureRate = 0.5
	}
	// A rate above 1 is unreachable by construction: the breaker stays
	// permanently closed (the explicit opt-out).
	if cfg.openFor <= 0 {
		cfg.openFor = DefaultCooldown
	}
	return &breaker{cfg: cfg}
}

// advance rotates the window to cover now, zeroing skipped buckets.
// Caller holds b.mu.
func (b *breaker) advance(now time.Time) {
	sec := now.Unix()
	if b.bucketAt == 0 {
		b.bucketAt = sec
		return
	}
	steps := sec - b.bucketAt
	if steps <= 0 {
		return
	}
	if steps > breakerBuckets {
		steps = breakerBuckets
	}
	for i := int64(0); i < steps; i++ {
		b.idx = (b.idx + 1) % breakerBuckets
		b.ok[b.idx] = 0
		b.fail[b.idx] = 0
	}
	b.bucketAt = sec
}

// window sums the rolling counts. Caller holds b.mu.
func (b *breaker) window() (ok, fail int64) {
	for i := 0; i < breakerBuckets; i++ {
		ok += b.ok[i]
		fail += b.fail[i]
	}
	return ok, fail
}

// allow reports whether a call to the peer may proceed. In half-open,
// exactly one caller is admitted as the probe; everyone else sheds.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cfg.openFor {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		b.probedAt = now
		return true
	default: // half-open
		// Reclaim a probe slot whose holder never reported back (the
		// admitted caller bailed before sending): after openFor the
		// slot is considered leaked and reseated.
		if b.probing && now.Sub(b.probedAt) <= b.cfg.openFor {
			return false
		}
		b.probing = true
		b.probedAt = now
		return true
	}
}

// success records an ok call; the half-open probe's success closes the
// breaker and resets the window.
func (b *breaker) success(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance(now)
	b.ok[b.idx]++
	if b.state != breakerClosed {
		b.state = breakerClosed
		b.probing = false
		for i := 0; i < breakerBuckets; i++ {
			b.ok[i], b.fail[i] = 0, 0
		}
		b.ok[b.idx] = 1
	}
}

// failure records a failed call; the half-open probe's failure re-opens
// the breaker, and a closed breaker opens at the configured rate.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance(now)
	b.fail[b.idx]++
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
	case breakerClosed:
		ok, fail := b.window()
		if total := ok + fail; total >= b.cfg.minVolume &&
			float64(fail)/float64(total) >= b.cfg.failureRate {
			b.state = breakerOpen
			b.openedAt = now
		}
	}
}

// snapshot returns the current state without mutating it.
func (b *breaker) snapshot() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// breakerStateName names a state for the status plane.
func breakerStateName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
