package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/serve"
)

// StatusSchemaVersion versions the /v1/status and /v1/debug/cluster
// JSON shapes. Bump it when a field is removed or renamed — additions
// are backward compatible — and keep the golden-keys schema test in
// sync, so dashboards break loudly in CI instead of silently in prod.
const StatusSchemaVersion = 2

// PartitionStatus is one held partition's replication view.
type PartitionStatus struct {
	Part int `json:"part"`
	// Role is "primary" when this node is the partition's first ring
	// owner (the member that assigns ingest sequence numbers),
	// "replica" otherwise.
	Role   string   `json:"role"`
	Owners []string `json:"owners"`
	Rows   int      `json:"rows"`
	// LastSeq is the last ingest sequence applied locally. On the
	// primary this is also the last assigned sequence; a replica's
	// shortfall against the primary is its replication lag.
	LastSeq     uint64 `json:"last_seq"`
	WALSegments int    `json:"wal_segments"`
}

// RingStatus is the node's view of cluster membership.
type RingStatus struct {
	// Digest fingerprints the membership + vnode layout; all members
	// of a healthy cluster report the same digest.
	Digest string `json:"digest"`
	// Epoch is the membership view version this ring was derived from;
	// members of a converged cluster report the same epoch.
	Epoch   int64          `json:"epoch"`
	VNodes  int            `json:"vnodes"`
	Members []MemberStatus `json:"members"`
}

// AntiEntropyStatus summarises the replica-repair loop.
type AntiEntropyStatus struct {
	Enabled   bool  `json:"enabled"`
	Ticks     int64 `json:"ticks"`
	Checked   int64 `json:"checked"`
	Divergent int64 `json:"divergent"`
	Repairs   int64 `json:"repairs"`
}

// CacheStatus summarises the versioned answer cache.
type CacheStatus struct {
	Enabled bool    `json:"enabled"`
	Size    int     `json:"size"`
	Hits    int64   `json:"hits"`
	HitRate float64 `json:"hit_rate"`
}

// SchedStatus summarises admission control.
type SchedStatus struct {
	QueueDepth int `json:"queue_depth"`
	// Classes carries per-tenant-class admission counters and latency
	// quantiles (Inflight doubles as the per-class queue depth).
	Classes map[string]metrics.TenantSnap `json:"classes,omitempty"`
}

// DriftStatus summarises incremental-maintenance state.
type DriftStatus struct {
	ProbationQuanta int   `json:"probation_quanta"`
	Invalidations   int64 `json:"invalidations"`
	Rebuilds        int64 `json:"rebuilds"`
}

// AuditStatus summarises the continuous accuracy audit.
type AuditStatus struct {
	Samples int64   `json:"samples"`
	MAPE    float64 `json:"mape"`
}

// ResilienceStatus summarises the node's RPC hardening layer: per-peer
// circuit-breaker states, the retry/hedge/degradation counters, and
// whether chaos fault injection is armed.
type ResilienceStatus struct {
	// Breakers maps peer base URL -> circuit state ("closed",
	// "half-open", "open"); peers this node never called are absent.
	Breakers map[string]string `json:"breakers,omitempty"`
	// WorstBreaker is the worst state across peers (0 closed,
	// 1 half-open, 2 open) — the sea_breaker_state gauge.
	WorstBreaker    int   `json:"worst_breaker"`
	RPCRetries      int64 `json:"rpc_retries"`
	Hedges          int64 `json:"hedges"`
	DegradedAnswers int64 `json:"degraded_answers"`
	// ChaosEnabled reports whether fault-injection rules are armed
	// (POST /v1/debug/chaos).
	ChaosEnabled bool `json:"chaos_enabled"`
}

// NodeStatus is the versioned introspection snapshot behind
// GET /v1/status: everything an operator (or the cluster aggregator)
// needs to judge one member's health at a glance.
type NodeStatus struct {
	SchemaVersion   int                     `json:"schema_version"`
	Node            string                  `json:"node"`
	UptimeMS        int64                   `json:"uptime_ms"`
	Ring            RingStatus              `json:"ring"`
	Partitions      []PartitionStatus       `json:"partitions"`
	RowsHeld        int64                   `json:"rows_held"`
	DataVersion     int64                   `json:"data_version"`
	AbsorbedVersion int64                   `json:"absorbed_version"`
	IngestEpoch     int64                   `json:"ingest_epoch"`
	Drift           DriftStatus             `json:"drift"`
	Cache           CacheStatus             `json:"cache"`
	Sched           SchedStatus             `json:"sched"`
	Audit           AuditStatus             `json:"audit"`
	SLO             []metrics.SLOClassState `json:"slo,omitempty"`
	Resilience      ResilienceStatus        `json:"resilience"`
	AntiEntropy     AntiEntropyStatus       `json:"antientropy"`
	Rebalance       RebalanceStatus         `json:"rebalance"`
	Runtime         obs.RuntimeSnap         `json:"runtime"`
	Flight          *flight.Status          `json:"flight,omitempty"`
}

// NodeStatus builds the node's introspection snapshot.
func (n *Node) NodeStatus() NodeStatus {
	rec := n.pool.Recorder()
	snap := rec.Snapshot()
	st := NodeStatus{
		SchemaVersion:   StatusSchemaVersion,
		Node:            n.id,
		UptimeMS:        time.Since(n.started).Milliseconds(),
		DataVersion:     n.DataVersion(),
		AbsorbedVersion: n.absorbedVer.Load(),
		IngestEpoch:     n.ingestEpoch.Load(),
	}

	ms := n.members()
	st.Ring = RingStatus{Digest: ms.ring.Digest(), Epoch: ms.view.Epoch, VNodes: ms.ring.VNodes()}
	for _, id := range ms.ring.Nodes() {
		url := ms.urls[id]
		m := MemberStatus{ID: id, URL: url, Self: id == n.id, Alive: true}
		if !m.Self {
			m.Alive = n.health.available(url)
		}
		st.Ring.Members = append(st.Ring.Members, m)
	}

	n.mu.RLock()
	st.RowsHeld = n.rowsHeld
	parts := make([]int, 0, len(n.parts))
	for p := range n.parts {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	for _, p := range parts {
		owners := ms.ring.Owners(partKey(p), n.cfg.Replicas)
		ps := PartitionStatus{
			Part:    p,
			Role:    "replica",
			Owners:  owners,
			Rows:    len(n.parts[p]),
			LastSeq: n.lastSeq[p],
		}
		if len(owners) > 0 && owners[0] == n.id {
			ps.Role = "primary"
		}
		if l := n.wals[p]; l != nil {
			ps.WALSegments = l.Segments()
		}
		st.Partitions = append(st.Partitions, ps)
	}
	n.mu.RUnlock()

	probation := 0
	for _, ag := range n.pool.Agents() {
		probation += ag.ProbationQuanta()
	}
	st.Drift = DriftStatus{
		ProbationQuanta: probation,
		Invalidations:   snap.DriftInvalidations,
		Rebuilds:        snap.Rebuilds,
	}

	if c := n.pool.Cache(); c != nil {
		st.Cache = CacheStatus{Enabled: true, Size: c.Len(), Hits: snap.CacheHits}
		if snap.Queries > 0 {
			st.Cache.HitRate = float64(snap.CacheHits) / float64(snap.Queries)
		}
	}

	st.Sched = SchedStatus{QueueDepth: n.sched.QueueDepth(), Classes: snap.Tenants}

	mape, samples := rec.Audit().MAPE("")
	st.Audit = AuditStatus{Samples: samples, MAPE: mape}

	st.SLO = n.slo.States()

	st.Resilience = ResilienceStatus{
		Breakers:        n.health.breakerStates(),
		WorstBreaker:    n.health.worstBreaker(),
		RPCRetries:      snap.RPCRetries,
		Hedges:          snap.Hedges,
		DegradedAnswers: snap.DegradedAnswers,
		ChaosEnabled:    n.fault.Enabled(),
	}

	ae := n.AntiEntropyCountersSnapshot()
	st.AntiEntropy = AntiEntropyStatus{
		Enabled:   n.aeArmed.Load(),
		Ticks:     ae.Ticks,
		Checked:   ae.Checked,
		Divergent: ae.Divergent,
		Repairs:   ae.Repairs,
	}
	st.Rebalance = n.RebalanceStatus()

	if !n.samplerBG {
		// No background loop: take the reading on demand so the
		// snapshot is never stale.
		n.sampler.Sample()
	}
	st.Runtime = n.sampler.Snapshot()

	if n.flight != nil {
		fs := n.flight.Status()
		st.Flight = &fs
	}
	return st
}

func (n *Node) handleStatus(w http.ResponseWriter, _ *http.Request) {
	serve.WriteJSON(w, http.StatusOK, n.NodeStatus())
}

// NodeReport is one member's slot in a ClusterReport.
type NodeReport struct {
	ID        string      `json:"id"`
	URL       string      `json:"url,omitempty"`
	Reachable bool        `json:"reachable"`
	Error     string      `json:"error,omitempty"`
	Status    *NodeStatus `json:"status,omitempty"`
}

// Finding is one cross-check verdict from the cluster aggregator.
type Finding struct {
	// Severity is "warn" or "critical".
	Severity string `json:"severity"`
	// Kind classifies the check: "unreachable", "ring_divergence",
	// "epoch_divergence", "replication_lag", "slo_burn",
	// "antientropy_repair" or "antientropy_divergence".
	Kind string `json:"kind"`
	Node string `json:"node,omitempty"`
	Part int    `json:"part,omitempty"`
	// Lag is the replication shortfall in ingest sequences (batches)
	// for replication_lag findings.
	Lag    uint64 `json:"lag,omitempty"`
	Detail string `json:"detail"`
}

// ClusterReport is the stitched cluster view behind
// GET /v1/debug/cluster: every member's status snapshot plus the
// aggregator's cross-check findings. Healthy means no critical
// finding.
type ClusterReport struct {
	SchemaVersion int          `json:"schema_version"`
	Coordinator   string       `json:"coordinator"`
	Healthy       bool         `json:"healthy"`
	Nodes         []NodeReport `json:"nodes"`
	Findings      []Finding    `json:"findings"`
	TookMS        int64        `json:"took_ms"`
}

// ClusterReport fans out GET /v1/status to every ring member
// (answering for itself locally), stitches the snapshots, and
// cross-checks them for divergent ring views, replication lag past the
// configured threshold, unreachable members and burning SLOs.
func (n *Node) ClusterReport() ClusterReport {
	start := time.Now()
	ms := n.members()
	ids := ms.ring.Nodes()
	reports := make([]NodeReport, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		if id == n.id {
			st := n.NodeStatus()
			reports[i] = NodeReport{ID: id, URL: ms.urls[id], Reachable: true, Status: &st}
			continue
		}
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			reports[i] = n.fetchStatus(id)
		}(i, id)
	}
	wg.Wait()

	rep := ClusterReport{
		SchemaVersion: StatusSchemaVersion,
		Coordinator:   n.id,
		Nodes:         reports,
		Findings:      []Finding{},
	}
	rep.Findings = append(rep.Findings, crossCheck(n.id, reports, n.cfg.LagThreshold)...)
	rep.Healthy = true
	for _, f := range rep.Findings {
		if f.Severity == "critical" {
			rep.Healthy = false
			break
		}
	}
	rep.TookMS = time.Since(start).Milliseconds()
	return rep
}

// fetchStatus pulls one peer's /v1/status snapshot.
func (n *Node) fetchStatus(id string) NodeReport {
	url, ok := n.members().urls[id]
	if !ok || url == "" {
		return NodeReport{ID: id, Error: "no peer URL"}
	}
	rep := NodeReport{ID: id, URL: url}
	resp, err := n.hc.Get(url + "/v1/status")
	if err != nil {
		rep.Error = err.Error()
		return rep
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		rep.Error = fmt.Sprintf("HTTP %d", resp.StatusCode)
		return rep
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		rep.Error = err.Error()
		return rep
	}
	var st NodeStatus
	if err := json.Unmarshal(body, &st); err != nil {
		rep.Error = err.Error()
		return rep
	}
	rep.Reachable = true
	rep.Status = &st
	return rep
}

// crossCheck derives health findings from the stitched member
// snapshots. lagThreshold is the replication shortfall (in ingest
// sequences) at which a lagging replica escalates from warn to
// critical; zero means any lag is critical.
func crossCheck(coord string, reports []NodeReport, lagThreshold uint64) []Finding {
	var findings []Finding

	// Unreachable members are critical: their partitions may be
	// lagging invisibly and their ring view is unknown.
	for _, r := range reports {
		if !r.Reachable {
			findings = append(findings, Finding{
				Severity: "critical",
				Kind:     "unreachable",
				Node:     r.ID,
				Detail:   fmt.Sprintf("node %s unreachable: %s", r.ID, r.Error),
			})
		}
	}

	// Ring agreement: every reachable member must report the
	// coordinator's digest, or key placement is diverging. A member on
	// an OLDER membership epoch is a softer signal — it gets the warn
	// epoch_divergence (stragglers converge via epoch stamps) and the
	// digest check is skipped for it, so a mid-propagation view change
	// does not masquerade as placement corruption.
	var coordDigest string
	var coordEpoch int64
	for _, r := range reports {
		if r.ID == coord && r.Status != nil {
			coordDigest = r.Status.Ring.Digest
			coordEpoch = r.Status.Ring.Epoch
		}
	}
	for _, r := range reports {
		if r.Status == nil || r.ID == coord {
			continue
		}
		if e := r.Status.Ring.Epoch; e != coordEpoch {
			findings = append(findings, Finding{
				Severity: "warn",
				Kind:     "epoch_divergence",
				Node:     r.ID,
				Detail: fmt.Sprintf("node %s membership epoch %d != coordinator %s (%d)",
					r.ID, e, coord, coordEpoch),
			})
			continue
		}
		if d := r.Status.Ring.Digest; coordDigest != "" && d != coordDigest {
			findings = append(findings, Finding{
				Severity: "critical",
				Kind:     "ring_divergence",
				Node:     r.ID,
				Detail: fmt.Sprintf("node %s ring digest %s != coordinator %s (%s)",
					r.ID, d, coord, coordDigest),
			})
		}
	}

	// Anti-entropy: surface repaired divergence as a warn (the system
	// healed itself, but silent corruption happened and deserves eyes);
	// divergence the loop could NOT heal is critical.
	for _, r := range reports {
		if r.Status == nil {
			continue
		}
		ae := r.Status.AntiEntropy
		if ae.Divergent > ae.Repairs {
			findings = append(findings, Finding{
				Severity: "critical",
				Kind:     "antientropy_divergence",
				Node:     r.ID,
				Detail: fmt.Sprintf("node %s: %d divergent replica(s) detected, only %d repaired",
					r.ID, ae.Divergent, ae.Repairs),
			})
		} else if ae.Repairs > 0 {
			findings = append(findings, Finding{
				Severity: "warn",
				Kind:     "antientropy_repair",
				Node:     r.ID,
				Detail: fmt.Sprintf("node %s: anti-entropy repaired %d divergent replica(s)",
					r.ID, ae.Repairs),
			})
		}
	}

	// Replication lag: for each partition, the highest applied
	// sequence across reporting holders is the reference (the primary
	// assigns sequences, so it is at or above every replica); any
	// holder short of it is lagging.
	type holder struct {
		node string
		seq  uint64
	}
	byPart := make(map[int][]holder)
	for _, r := range reports {
		if r.Status == nil {
			continue
		}
		for _, ps := range r.Status.Partitions {
			byPart[ps.Part] = append(byPart[ps.Part], holder{node: r.ID, seq: ps.LastSeq})
		}
	}
	parts := make([]int, 0, len(byPart))
	for p := range byPart {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	for _, p := range parts {
		hs := byPart[p]
		var ref uint64
		for _, h := range hs {
			if h.seq > ref {
				ref = h.seq
			}
		}
		for _, h := range hs {
			if h.seq >= ref {
				continue
			}
			lag := ref - h.seq
			sev := "warn"
			if lag >= lagThreshold {
				sev = "critical"
			}
			findings = append(findings, Finding{
				Severity: sev,
				Kind:     "replication_lag",
				Node:     h.node,
				Part:     p,
				Lag:      lag,
				Detail: fmt.Sprintf("node %s partition %d applied seq %d, %d behind seq %d",
					h.node, p, h.seq, lag, ref),
			})
		}
	}

	// SLO burn: surface every non-ok class per node.
	for _, r := range reports {
		if r.Status == nil {
			continue
		}
		for _, st := range r.Status.SLO {
			if st.State == "ok" {
				continue
			}
			sev := "warn"
			if st.State == "critical" {
				sev = "critical"
			}
			findings = append(findings, Finding{
				Severity: sev,
				Kind:     "slo_burn",
				Node:     r.ID,
				Detail: fmt.Sprintf("node %s class %q %s: burn fast=%.2f slow=%.2f",
					r.ID, st.Class, st.State, st.FastBurn, st.SlowBurn),
			})
		}
	}
	return findings
}

func (n *Node) handleDebugCluster(w http.ResponseWriter, _ *http.Request) {
	serve.WriteJSON(w, http.StatusOK, n.ClusterReport())
}
