package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/query"
)

// flightCluster is liveCluster with the flight recorder on: a short
// background sampling period so history accrues during the test, the
// anomaly detector armed, and a per-cluster spool directory.
func flightCluster(t *testing.T, nodes int) *LocalCluster {
	t.Helper()
	rows := testRows(2_000, 11)
	cfg := core.DefaultConfig(2)
	cfg.TrainingQueries = 1 << 30
	cfg.DriftRowBudget = 200
	lc, err := StartLocal(nodes, Config{
		Agent:        cfg,
		Replicas:     2,
		WriteQuorum:  2,
		DataDir:      t.TempDir(),
		Flight:       true,
		FlightSample: 10 * time.Millisecond,
		FlightSpool:  t.TempDir(),
		Anomaly:      true,
	}, rows)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	return lc
}

// TestFlightStatusSection checks that a flight-enabled node surfaces
// the recorder in /v1/status and that the series registry includes the
// per-path latency and runtime series the issue calls for.
func TestFlightStatusSection(t *testing.T) {
	lc := flightCluster(t, 3)
	client := lc.Client()
	for i := 0; i < 10; i++ {
		if _, err := client.Answer(wholeSpace(query.Sum, 2)); err != nil {
			t.Fatal(err)
		}
	}
	// The sampler runs in the background; the immediate first tick at
	// Start guarantees at least one sample before we look.
	for _, id := range lc.IDs() {
		st := lc.Node(id).NodeStatus()
		if st.Flight == nil {
			t.Fatalf("node %s: no flight section in status", id)
		}
		if st.Flight.Series == 0 || st.Flight.Ticks == 0 {
			t.Fatalf("node %s: flight section empty: %+v", id, st.Flight)
		}
		names := map[string]bool{}
		for _, m := range lc.Node(id).Flight().Metrics() {
			names[m] = true
		}
		for _, want := range []string{
			"queries", "cache_hit_rate", "lat_p99_all", "lat_p99_exact_scatter",
			"sea_go_goroutines", "replication_lag", "sched_queue_depth",
			"slo_state",
		} {
			if !names[want] {
				t.Fatalf("node %s: series %q not registered (have %v)", id, want, lc.Node(id).Flight().Metrics())
			}
		}
	}
}

// TestFlightHistoryEndpoint checks the /v1/history wire shape: the
// bare endpoint lists metrics, a valid metric replays points, unknown
// metrics 404 and bad windows 400.
func TestFlightHistoryEndpoint(t *testing.T) {
	lc := flightCluster(t, 3)
	client := lc.Client()
	for i := 0; i < 20; i++ {
		if _, err := client.Answer(wholeSpace(query.Sum, 2)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // a few sampler ticks
	base := lc.URL(lc.IDs()[0])

	resp, err := http.Get(base + "/v1/history")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Metrics []string `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Metrics) == 0 {
		t.Fatal("empty metric listing")
	}

	// The client pins its coordinator to one member, so the queries
	// counter ramps on exactly one node — find it over HTTP.
	var recorded float64
	for _, id := range lc.IDs() {
		resp, err := http.Get(lc.URL(id) + "/v1/history?metric=queries&window=5s")
		if err != nil {
			t.Fatal(err)
		}
		var hist flight.History
		if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if hist.Metric != "queries" || hist.Resolution == "" || len(hist.Points) == 0 {
			t.Fatalf("node %s: bad history replay: %+v", id, hist)
		}
		if last := hist.Points[len(hist.Points)-1]; last.V > recorded {
			recorded = last.V
		}
	}
	if recorded < 20 {
		t.Fatalf("no member's queries series recorded the load (max last point %v)", recorded)
	}

	for _, tc := range []struct {
		path string
		code int
	}{
		{"/v1/history?metric=no_such_series", http.StatusNotFound},
		{"/v1/history?metric=queries&window=banana", http.StatusBadRequest},
	} {
		resp, err := http.Get(base + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Fatalf("GET %s: HTTP %d, want %d", tc.path, resp.StatusCode, tc.code)
		}
	}
}

// TestFlightScrapeWhileServingHammer scrapes /v1/history and
// /v1/debug/bundles from every member while queries and ingest batches
// are in flight and the background sampler ticks at 10ms — the ring
// buffers are written lock-free on the sample path and read
// concurrently by the handlers, so this is the test -race cares about.
func TestFlightScrapeWhileServingHammer(t *testing.T) {
	lc := flightCluster(t, 3)
	client := lc.Client()
	urls := make([]string, 0, 3)
	for _, id := range lc.IDs() {
		urls = append(urls, lc.URL(id))
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	fail := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				if _, err := client.Answer(wholeSpace(query.Sum, 2)); err != nil {
					fail(fmt.Errorf("query: %w", err))
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < 16; b++ {
			if _, err := client.Ingest(ingestRows(25, 6_000_000+uint64(b*25))); err != nil {
				fail(fmt.Errorf("ingest: %w", err))
				return
			}
		}
	}()

	paths := []string{
		"/v1/history?metric=lat_p99_all&window=10m",
		"/v1/history?metric=queries&window=6h",
		"/v1/history",
		"/v1/debug/bundles",
	}
	for s := range paths {
		wg.Add(1)
		go func(path string, s int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				url := urls[(s+i)%len(urls)] + path
				resp, err := http.Get(url)
				if err != nil {
					fail(fmt.Errorf("GET %s: %w", url, err))
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					fail(fmt.Errorf("GET %s: %w", url, err))
					return
				}
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("GET %s: HTTP %d: %s", url, resp.StatusCode, body))
					return
				}
				var decoded any
				if err := json.Unmarshal(body, &decoded); err != nil {
					fail(fmt.Errorf("GET %s: bad JSON: %w", url, err))
					return
				}
			}
		}(paths[s], s)
	}

	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	st := lc.Node(lc.IDs()[0]).NodeStatus()
	if st.Flight == nil || st.Flight.Ticks == 0 {
		t.Fatalf("flight recorder idle through the hammer: %+v", st.Flight)
	}
}
