package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
)

// countAll returns the cluster's exact whole-space row count via the
// client query path.
func countAll(t *testing.T, c *Client) float64 {
	t.Helper()
	a, err := c.Answer(wholeSpace(query.Count, 0))
	if err != nil {
		t.Fatal(err)
	}
	return a.Value
}

// TestElasticJoinMovesPartitions: a 3-node cluster gains a 4th member
// at runtime. The joiner must end up holding live partitions, every
// node must converge on the new epoch, replica holders must agree
// bit-for-bit, and no rows may be lost or duplicated by the moves.
func TestElasticJoinMovesPartitions(t *testing.T) {
	lc, rows := liveCluster(t, 3, t.TempDir())
	client := lc.Client()
	before := countAll(t, client)
	if before != float64(len(rows)) {
		t.Fatalf("baseline count %v, want %d", before, len(rows))
	}

	if err := lc.Join("n3"); err != nil {
		t.Fatal(err)
	}

	joiner := lc.Node("n3")
	st := joiner.NodeStatus()
	if len(st.Partitions) == 0 || st.RowsHeld == 0 {
		t.Fatalf("joiner holds nothing after join: %+v", st)
	}
	for _, id := range lc.IDs() {
		if e := lc.Node(id).NodeStatus().Ring.Epoch; e < 2 {
			t.Fatalf("node %s still at epoch %d after join", id, e)
		}
		if n := len(lc.Node(id).NodeStatus().Ring.Members); n != 4 {
			t.Fatalf("node %s sees %d members, want 4", id, n)
		}
	}
	// Row conservation through the moves, via both the old (stale,
	// self-refreshing) client and a fresh one.
	if after := countAll(t, client); after != before {
		t.Fatalf("count %v after join, want %v", after, before)
	}
	fresh := lc.Client()
	if after := countAll(t, fresh); after != before {
		t.Fatalf("fresh-client count %v after join, want %v", after, before)
	}
	if client.Epoch() < 2 {
		t.Fatalf("stale client never refreshed: epoch %d", client.Epoch())
	}
	assertHoldersAgree(t, lc)

	// Ingest keeps working against the new placement, including batches
	// that land on the joiner's partitions.
	if _, err := client.Ingest(ingestRows(200, 7_000_000)); err != nil {
		t.Fatal(err)
	}
	if after := countAll(t, client); after != before+200 {
		t.Fatalf("count %v after post-join ingest, want %v", after, before+200)
	}
	assertHoldersAgree(t, lc)

	rep := lc.Node("n0").ClusterReport()
	if !rep.Healthy {
		t.Fatalf("cluster unhealthy after join: %+v", rep.Findings)
	}
}

// TestElasticLeaveRetiresMember: a 4-node cluster gracefully retires
// one member. Its partitions must migrate to the survivors before the
// cutover, the cluster must converge on the new epoch, and no acked
// row may be lost.
func TestElasticLeaveRetiresMember(t *testing.T) {
	lc, rows := liveCluster(t, 4, t.TempDir())
	client := lc.Client()
	before := countAll(t, client)
	if before != float64(len(rows)) {
		t.Fatalf("baseline count %v, want %d", before, len(rows))
	}

	if err := lc.Leave("n1"); err != nil {
		t.Fatal(err)
	}
	if got := len(lc.IDs()); got != 3 {
		t.Fatalf("%d members after leave, want 3", got)
	}
	for _, id := range lc.IDs() {
		st := lc.Node(id).NodeStatus()
		if st.Ring.Epoch < 2 {
			t.Fatalf("node %s still at epoch %d after leave", id, st.Ring.Epoch)
		}
		for _, ps := range st.Partitions {
			for _, o := range ps.Owners {
				if o == "n1" {
					t.Fatalf("node %s partition %d still lists departed owner: %v", id, ps.Part, ps.Owners)
				}
			}
		}
	}
	if after := countAll(t, client); after != before {
		t.Fatalf("count %v after leave, want %v", after, before)
	}
	assertHoldersAgree(t, lc)
	if _, err := client.Ingest(ingestRows(150, 8_000_000)); err != nil {
		t.Fatal(err)
	}
	if after := countAll(t, client); after != before+150 {
		t.Fatalf("count %v after post-leave ingest, want %v", after, before+150)
	}
	rep := lc.Node("n0").ClusterReport()
	if !rep.Healthy {
		t.Fatalf("cluster unhealthy after leave: %+v", rep.Findings)
	}
}

// TestMembershipClientRefreshEvictsRemoved is the staleness regression
// test: after a member leaves, a client that has observed the new
// epoch must send the departed node ZERO further data-plane RPCs. The
// leaver keeps its HTTP server running (orchestrated via POST
// /v1/leave directly, not LocalCluster.Leave) precisely so it can
// count any RPC that would still reach it.
func TestMembershipClientRefreshEvictsRemoved(t *testing.T) {
	lc, _ := liveCluster(t, 4, t.TempDir())
	client := lc.Client()
	if _, err := client.Answer(wholeSpace(query.Sum, 2)); err != nil {
		t.Fatal(err)
	}
	if client.Epoch() != 1 {
		t.Fatalf("client epoch %d before churn, want 1", client.Epoch())
	}

	leaver := lc.Node("n3")
	body, _ := json.Marshal(LeaveRequest{ID: "n3"})
	resp, err := http.Post(lc.URL("n0")+"/v1/leave", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leave: HTTP %d", resp.StatusCode)
	}

	// The next successful client call returns a survivor's epoch-2
	// stamp, which must trigger a synchronous membership refresh.
	if _, err := client.Status(); err != nil {
		t.Fatal(err)
	}
	if client.Epoch() < 2 {
		t.Fatalf("client stuck at epoch %d after observing the new view", client.Epoch())
	}

	base := leaver.DataRPCs()
	for i := 0; i < 40; i++ {
		if _, err := client.Answer(wholeSpace(query.Sum, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Ingest(ingestRows(60, 9_000_000)); err != nil {
		t.Fatal(err)
	}
	if got := leaver.DataRPCs(); got != base {
		t.Fatalf("departed node received %d data RPCs from a refreshed client", got-base)
	}
}

// TestAntiEntropyRepairsCorruptReplica: silently corrupt a replica's
// in-memory copy (same sequence, different bytes — invisible to the
// replication protocol), then drive the armed anti-entropy tick and
// require it to detect the divergence and heal the replica back to a
// bit-identical copy of the primary.
func TestAntiEntropyRepairsCorruptReplica(t *testing.T) {
	rows := testRows(2_000, 11)
	cfg := core.DefaultConfig(2)
	cfg.TrainingQueries = 1 << 30
	lc, err := StartLocal(3, Config{Agent: cfg, Replicas: 2, AntiEntropy: -1}, rows)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)

	// Find a partition with a distinct primary and replica holder.
	any := lc.Node(lc.IDs()[0])
	part, primaryID, replicaID := -1, "", ""
	for p := 0; p < any.Partitions(); p++ {
		owners := any.PartitionOwners(p)
		if len(owners) >= 2 {
			part, primaryID, replicaID = p, owners[0], owners[1]
			break
		}
	}
	if part < 0 {
		t.Fatal("no replicated partition found")
	}
	primary, replica := lc.Node(primaryID), lc.Node(replicaID)

	if !replica.CorruptPartition(part) {
		t.Fatalf("could not corrupt partition %d on %s", part, replicaID)
	}
	probe := wholeSpace(query.Var, 2)
	pState, _ := primary.PartialState(part, probe)
	rState, _ := replica.PartialState(part, probe)
	if equalFloats(pState, rState) {
		t.Fatal("corruption did not diverge the replica")
	}

	if repaired := replica.AntiEntropyTick(); repaired != 1 {
		t.Fatalf("tick repaired %d partitions, want 1", repaired)
	}
	if got := replica.AntiEntropyRepairs(); got != 1 {
		t.Fatalf("repairs counter %d, want 1", got)
	}
	pState, _ = primary.PartialState(part, probe)
	rState, _ = replica.PartialState(part, probe)
	if !equalFloats(pState, rState) {
		t.Fatalf("replica not bit-identical after repair: %v != %v", rState, pState)
	}
	c := replica.AntiEntropyCountersSnapshot()
	if c.Ticks == 0 || c.Checked == 0 || c.Divergent != 1 {
		t.Fatalf("counters not advanced: %+v", c)
	}
	// A second tick finds nothing to do.
	if repaired := replica.AntiEntropyTick(); repaired != 0 {
		t.Fatalf("second tick repaired %d partitions, want 0", repaired)
	}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAntiEntropyDisarmedTick: with AntiEntropy unset the tick must be
// an inert no-op (the hot-path guarantee the CI bench pins as
// zero-allocation).
func TestAntiEntropyDisarmedTick(t *testing.T) {
	lc, _ := exactCluster(t, 3)
	n := lc.Node(lc.IDs()[0])
	if got := n.AntiEntropyTick(); got != 0 {
		t.Fatalf("disarmed tick returned %d", got)
	}
	c := n.AntiEntropyCountersSnapshot()
	if c.Ticks != 0 || c.Checked != 0 {
		t.Fatalf("disarmed tick advanced counters: %+v", c)
	}
}

// TestElasticCloseDrainUnderIngest is the graceful-leave drain hammer
// (run under -race in CI): members join and leave while ingest batches
// and queries are in flight. Clients must see zero errors — the
// leaving member finishes the replication acks it has accepted before
// shutting down, and failover masks the rest — and every acked row
// must be countable after the churn settles.
func TestElasticCloseDrainUnderIngest(t *testing.T) {
	lc, rows := liveCluster(t, 3, t.TempDir())
	client := lc.Client()

	var (
		wg      sync.WaitGroup
		acked   atomic.Int64
		stop    atomic.Bool
		failed  atomic.Bool
		firstMu sync.Mutex
		firstEr error
	)
	fail := func(err error) {
		firstMu.Lock()
		if firstEr == nil {
			firstEr = err
		}
		firstMu.Unlock()
		failed.Store(true)
	}

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := uint64(20_000_000 + w*1_000_000)
			for b := 0; b < 25 && !stop.Load(); b++ {
				const batch = 20
				r, err := client.Ingest(ingestRows(batch, key))
				key += batch
				if err != nil {
					fail(fmt.Errorf("ingest: %w", err))
					return
				}
				n := 0
				for _, pr := range r.Parts {
					if !pr.Acked {
						fail(fmt.Errorf("unacked partition %d mid-churn", pr.Part))
						return
					}
					n += pr.Rows
				}
				acked.Add(int64(n))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60 && !stop.Load(); i++ {
			if _, err := client.Answer(wholeSpace(query.Sum, 2)); err != nil {
				fail(fmt.Errorf("query: %w", err))
				return
			}
		}
	}()

	if err := lc.Join("n3"); err != nil {
		fail(err)
	}
	if err := lc.Leave("n0"); err != nil {
		fail(err)
	}
	stop.Store(false) // writers run to completion; churn happened mid-flight
	wg.Wait()
	if failed.Load() {
		t.Fatal(firstEr)
	}

	want := float64(len(rows)) + float64(acked.Load())
	if got := countAll(t, client); got != want {
		t.Fatalf("count %v after churn, want %v (%d acked rows)", got, want, acked.Load())
	}
	assertHoldersAgree(t, lc)
}
