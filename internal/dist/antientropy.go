package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"time"

	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/storage"
)

// This file is the anti-entropy repair loop: replica holders compare
// per-partition content digests against the partition's primary on a
// background cadence and heal any divergence wholesale via the same
// snapshot-ship path migrations use.
//
// Digest format (Merkle-style, one level deep — partitions are small
// enough that a chunk list beats a full tree): rows are hashed in
// insertion order into fixed-size chunks of aeChunkRows rows each;
// each chunk hash is FNV-64a over every row's key bytes and the raw
// IEEE-754 bits of every vector element. The root re-hashes the chunk
// hashes plus the row count and last applied ingest sequence, so two
// replicas agree iff they hold bit-identical rows in the same order at
// the same sequence. The chunk list travels with the root so a future
// partial-repair path could ship only divergent chunks; today repair
// replaces the partition wholesale, which is simpler and still cheap
// at our partition sizes.
//
// The primary is treated as ground truth: replicas repair FROM the
// primary, never the reverse, so a corrupted primary is not healed by
// this loop (it would need a primaryship change first). That matches
// the ingest path, where the primary's copy defines the sequence.

// aeChunkRows is the digest chunk width, in rows.
const aeChunkRows = 1024

// DigestRequest is the POST /v1/digest body: name a partition, get its
// content digest.
type DigestRequest struct {
	Part  int   `json:"part"`
	Epoch int64 `json:"epoch,omitempty"`
}

// PartDigest is one partition's content digest.
type PartDigest struct {
	Part    int      `json:"part"`
	LastSeq uint64   `json:"last_seq"`
	Rows    int      `json:"rows"`
	Chunks  []uint64 `json:"chunks,omitempty"`
	Root    string   `json:"root"`
	Epoch   int64    `json:"epoch,omitempty"`
}

// AntiEntropyCounters snapshots the repair loop's lifetime counters.
type AntiEntropyCounters struct {
	Ticks     int64
	Checked   int64
	Divergent int64
	Repairs   int64
}

// digestPartition computes partition p's content digest. The second
// return is false when the node does not hold p live.
func (n *Node) digestPartition(p int) (PartDigest, bool) {
	n.mu.RLock()
	rows, held := n.parts[p]
	lastSeq := n.lastSeq[p]
	n.mu.RUnlock()
	if !held {
		return PartDigest{}, false
	}
	d := PartDigest{Part: p, LastSeq: lastSeq, Rows: len(rows), Epoch: n.epoch()}
	var buf [8]byte
	h := fnv.New64a()
	for i, r := range rows {
		if i > 0 && i%aeChunkRows == 0 {
			d.Chunks = append(d.Chunks, h.Sum64())
			h.Reset()
		}
		binary.LittleEndian.PutUint64(buf[:], r.Key)
		h.Write(buf[:])
		for _, v := range r.Vec {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	if len(rows) > 0 {
		d.Chunks = append(d.Chunks, h.Sum64())
	}
	root := fnv.New64a()
	for _, c := range d.Chunks {
		binary.LittleEndian.PutUint64(buf[:], c)
		root.Write(buf[:])
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(len(rows)))
	root.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], lastSeq)
	root.Write(buf[:])
	d.Root = fmt.Sprintf("%016x", root.Sum64())
	return d, true
}

func (n *Node) handleDigest(w http.ResponseWriter, r *http.Request) {
	var req DigestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		serve.WriteError(w, fmt.Errorf("%w: %v", query.ErrBadQuery, err))
		return
	}
	n.noteEpoch(req.Epoch)
	d, ok := n.digestPartition(req.Part)
	if !ok {
		serve.WriteJSON(w, http.StatusNotFound, map[string]string{
			"error": fmt.Sprintf("dist: node %s does not hold partition %d", n.id, req.Part),
		})
		return
	}
	serve.WriteJSON(w, http.StatusOK, d)
}

// fetchDigest fetches partition p's digest from a peer.
func (n *Node) fetchDigest(url string, p int) (*PartDigest, error) {
	body, err := json.Marshal(DigestRequest{Part: p, Epoch: n.epoch()})
	if err != nil {
		return nil, err
	}
	resp, err := n.hc.Post(url+"/v1/digest", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: digest %d from %s: HTTP %d: %w",
			p, url, resp.StatusCode, errPeerResponded)
	}
	var out PartDigest
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	n.noteEpoch(out.Epoch)
	return &out, nil
}

// AntiEntropyTick runs one pass of the repair loop: for every held
// partition whose primary is another node, compare content digests and
// heal divergence. Returns the number of repairs performed this tick.
// Disarmed (Config.AntiEntropy == 0) it is a single atomic load — the
// zero-allocation guarantee the CI bench grep pins.
func (n *Node) AntiEntropyTick() int {
	if !n.aeArmed.Load() {
		return 0
	}
	n.aeTicks.Add(1)
	ms := n.members()
	repaired := 0
	n.mu.RLock()
	held := make([]int, 0, len(n.parts))
	for p := range n.parts {
		held = append(held, p)
	}
	n.mu.RUnlock()
	for _, p := range held {
		owners := ms.ring.Owners(partKey(p), n.cfg.Replicas)
		if len(owners) == 0 || owners[0] == n.id {
			continue // primary is ground truth; nothing to compare against
		}
		purl := ms.urls[owners[0]]
		if purl == "" || !n.health.available(purl) {
			continue
		}
		n.aeChecked.Add(1)
		remote, err := n.fetchDigest(purl, p)
		if err != nil {
			continue
		}
		local, ok := n.digestPartition(p)
		if !ok {
			continue // lost the partition mid-tick (view change)
		}
		if remote.LastSeq > local.LastSeq {
			// Plain replication lag, not divergence: catch up through
			// the WAL path first (it takes the partition lock itself),
			// then re-compare.
			_, _ = n.catchUpPartition(p)
			local, ok = n.digestPartition(p)
			if !ok || remote.LastSeq > local.LastSeq {
				continue
			}
		}
		if remote.LastSeq < local.LastSeq {
			continue // the primary is behind us; its own heal path owns this
		}
		if remote.Root == local.Root {
			continue
		}
		// Same sequence, different content: a genuinely diverged
		// replica. Repair wholesale from the primary. Divergent and
		// Repairs are bumped together after the attempt so the status
		// plane's divergent-vs-repaired comparison never flags a
		// transient in-progress repair as critical.
		err = n.repairPartition(p, purl)
		n.aeDivergent.Add(1)
		if err != nil {
			n.logger.Warn("anti-entropy repair failed", "part", p, "primary", owners[0], "err", err)
			continue
		}
		n.aeRepairs.Add(1)
		repaired++
		n.logger.Info("anti-entropy repaired divergent replica",
			"part", p, "primary", owners[0], "root", remote.Root)
	}
	return repaired
}

// repairPartition replaces partition p wholesale with the primary's
// snapshot. Safe against the ingest path: it holds p's partition lock
// for the whole replace, and the donor's partsnap handler reads under
// its own state lock only (no partition lock), so mutual repair cannot
// deadlock.
func (n *Node) repairPartition(p int, primaryURL string) error {
	if !n.ingestGate() {
		return errNodeClosing
	}
	defer n.closeDone()
	mu := n.partLock(p)
	if mu == nil {
		return fmt.Errorf("dist: partition %d not held", p)
	}
	mu.Lock()
	defer mu.Unlock()
	snap, err := n.fetchPartSnap(primaryURL, p)
	if err != nil {
		return err
	}
	return n.installPartitionLocked(p, &stagedPart{
		rows:    wireToRows(snap.Rows),
		baseLen: snap.BaseLen,
		lastSeq: snap.LastSeq,
	})
}

// AntiEntropyRepairs returns the lifetime count of successful repairs.
func (n *Node) AntiEntropyRepairs() int64 { return n.aeRepairs.Load() }

// AntiEntropyCountersSnapshot returns the loop's lifetime counters.
func (n *Node) AntiEntropyCountersSnapshot() AntiEntropyCounters {
	return AntiEntropyCounters{
		Ticks:     n.aeTicks.Load(),
		Checked:   n.aeChecked.Load(),
		Divergent: n.aeDivergent.Load(),
		Repairs:   n.aeRepairs.Load(),
	}
}

// antiEntropyLoop drives AntiEntropyTick at the configured cadence
// until Close.
func (n *Node) antiEntropyLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-n.aeStop:
			return
		case <-t.C:
			n.AntiEntropyTick()
		}
	}
}

// CorruptPartition deliberately diverges this node's in-memory copy of
// partition p (flips one vector element in a middle row) WITHOUT
// touching its WAL or sequence, so the copy disagrees with the primary
// at the same LastSeq — exactly the silent-divergence case the
// anti-entropy loop exists to catch. Test/experiment hook (E22).
// Returns false if the node does not hold p or p is empty.
func (n *Node) CorruptPartition(p int) bool {
	mu := n.partLock(p)
	if mu == nil {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	n.mu.Lock()
	rows, held := n.parts[p]
	if !held || len(rows) == 0 {
		n.mu.Unlock()
		return false
	}
	// Copy-on-write the whole slice: concurrent readers hold the old
	// backing array, so an in-place element write would race.
	nr := append([]storage.Row(nil), rows...)
	i := len(nr) / 2
	vec := append([]float64(nil), nr[i].Vec...)
	if len(vec) == 0 {
		n.mu.Unlock()
		return false
	}
	vec[len(vec)-1] += 1e6
	nr[i].Vec = vec
	n.parts[p] = nr
	cs := storage.NewColStore(-1)
	cs.Append(nr...)
	n.cols[p] = cs
	n.version++
	ver := n.version
	n.mu.Unlock()
	n.publishAbsorbed(ver)
	return true
}
