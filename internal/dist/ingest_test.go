package dist

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/storage"
)

// liveCluster starts a cluster with WAL durability under dir and a
// write quorum equal to the replication factor (every acked batch is on
// every owner).
func liveCluster(t *testing.T, nodes int, dir string) (*LocalCluster, []storage.Row) {
	t.Helper()
	rows := testRows(2_000, 11)
	cfg := core.DefaultConfig(2)
	cfg.TrainingQueries = 1 << 30 // exact-path cluster: determinism matters here
	cfg.DriftRowBudget = 200
	lc, err := StartLocal(nodes, Config{
		Agent:       cfg,
		Replicas:    2,
		WriteQuorum: 2,
		DataDir:     dir,
	}, rows)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	return lc, rows
}

// ingestRows builds fresh uniquely-keyed rows for ingest.
func ingestRows(n int, firstKey uint64) []storage.Row {
	out := make([]storage.Row, n)
	for i := range out {
		k := firstKey + uint64(i)
		out[i] = storage.Row{Key: k, Vec: []float64{float64(k%100) + 0.5, 50, 1}}
	}
	return out
}

// wholeSpace selects every row.
func wholeSpace(agg query.Agg, col int) query.Query {
	return query.Query{
		Select:    query.Selection{Los: []float64{-1e9, -1e9}, His: []float64{1e9, 1e9}},
		Aggregate: agg, Col: col,
	}
}

// assertHoldersAgree checks that every holder of every partition has a
// bit-identical partial aggregate state (VAR partials exercise counts,
// sums and sums of squares at once).
func assertHoldersAgree(t *testing.T, lc *LocalCluster) {
	t.Helper()
	probe := wholeSpace(query.Var, 2)
	any := lc.Node(lc.IDs()[0])
	for p := 0; p < any.Partitions(); p++ {
		owners := any.PartitionOwners(p)
		var ref []float64
		var refID string
		for _, id := range owners {
			node := lc.Node(id)
			if node == nil {
				continue
			}
			st, ok := node.PartialState(p, probe)
			if !ok {
				t.Fatalf("owner %s does not hold partition %d", id, p)
			}
			if ref == nil {
				ref, refID = st, id
				continue
			}
			if len(st) != len(ref) {
				t.Fatalf("partition %d: %s and %s disagree on partial width", p, refID, id)
			}
			for i := range st {
				if st[i] != ref[i] {
					t.Fatalf("partition %d: %s and %s partial states differ at %d: %v != %v",
						p, refID, id, i, st[i], ref[i])
				}
			}
		}
	}
}

func TestIngestReplicatesAtQuorumAndStaysExact(t *testing.T) {
	lc, base := liveCluster(t, 3, t.TempDir())
	client := lc.Client()

	var acked int
	for b := 0; b < 5; b++ {
		batch := ingestRows(40, 1_000_000+uint64(b)*1000)
		resp, err := client.Ingest(batch)
		if err != nil {
			t.Fatal(err)
		}
		if resp.FailedRows != 0 {
			t.Fatalf("batch %d: %d rows missed quorum on a healthy cluster: %+v",
				b, resp.FailedRows, resp.Parts)
		}
		acked += resp.AckedRows
	}
	if acked != 200 {
		t.Fatalf("acked %d rows, want 200", acked)
	}

	// Every holder of every partition applied the same sequenced log.
	assertHoldersAgree(t, lc)

	// The exact read path sees the ingested rows immediately.
	res, _, err := lc.Node(lc.IDs()[0]).ScatterGather(wholeSpace(query.Count, 0))
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Value) != len(base)+acked {
		t.Fatalf("cluster COUNT = %v, want %d", res.Value, len(base)+acked)
	}

	// Ingest counters surface through the cluster status.
	st := lc.Node(lc.IDs()[0]).Status()
	if st.Serving.IngestRows == 0 || st.Serving.IngestBatches == 0 {
		t.Fatalf("node ingest counters empty: %+v", st.Serving)
	}
}

func TestIngestWALReplaySurvivesKill(t *testing.T) {
	dir := t.TempDir()
	lc, base := liveCluster(t, 3, dir)
	client := lc.Client()

	// Phase 1: acked writes on a healthy cluster.
	var acked int
	for b := 0; b < 4; b++ {
		resp, err := client.Ingest(ingestRows(50, 2_000_000+uint64(b)*1000))
		if err != nil {
			t.Fatal(err)
		}
		acked += resp.AckedRows
		if resp.FailedRows != 0 {
			t.Fatalf("unexpected quorum failure pre-kill: %+v", resp.Parts)
		}
	}

	// Kill a member, keep ingesting. Partitions whose primary died fail
	// (unacked); partitions with a live primary but the dead replica
	// also fail quorum 2/2 — either way no acked write involves the
	// dead node without having hit its WAL first.
	victim := lc.IDs()[2]
	lc.Kill(victim)
	var duringAcked, duringFailed int
	for b := 0; b < 4; b++ {
		resp, err := client.Ingest(ingestRows(50, 3_000_000+uint64(b)*1000))
		if err != nil {
			t.Fatal(err)
		}
		duringAcked += resp.AckedRows
		duringFailed += resp.FailedRows
	}
	if duringFailed == 0 {
		t.Fatalf("expected some quorum failures with a dead owner (W=R=2)")
	}

	// Revive: base reload + own-WAL replay + log-tail catch-up.
	if _, err := lc.Revive(victim, ""); err != nil {
		t.Fatal(err)
	}

	// No acked write lost, and the restarted member is bit-identical to
	// the never-killed holders.
	assertHoldersAgree(t, lc)
	res, _, err := lc.Node(victim).ScatterGather(wholeSpace(query.Count, 0))
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Value) < len(base)+acked+duringAcked {
		t.Fatalf("post-recovery COUNT %v lost acked rows (want >= %d)",
			res.Value, len(base)+acked+duringAcked)
	}
}

func TestIngestNonPrimaryProxiesToPrimary(t *testing.T) {
	lc, _ := liveCluster(t, 3, t.TempDir())
	node0 := lc.Node(lc.IDs()[0])

	// Find a key whose partition primary is NOT n0, so posting the row
	// to n0 forces the proxy hop.
	var key uint64
	var part int
	found := false
	for k := uint64(5_000_000); k < 5_000_500; k++ {
		p := node0.partitionForKey(k)
		if owners := node0.PartitionOwners(p); len(owners) > 0 && owners[0] != node0.ID() {
			key, part, found = k, p, true
			break
		}
	}
	if !found {
		t.Skip("no foreign-primary key in probe range")
	}

	body, _ := json.Marshal(IngestRequest{Rows: []WireRow{{Key: key, Vec: []float64{1, 2, 3}}}})
	resp, err := http.Post(lc.URL(node0.ID())+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.AckedRows != 1 || out.FailedRows != 0 {
		t.Fatalf("proxied ingest not acked: %+v", out)
	}
	// The row must be visible on the primary (and every holder).
	primary := lc.Node(node0.PartitionOwners(part)[0])
	probe := query.Query{
		Select:    query.Selection{Los: []float64{-1e9, -1e9}, His: []float64{1e9, 1e9}},
		Aggregate: query.Count,
	}
	st, ok := primary.PartialState(part, probe)
	if !ok || len(st) == 0 {
		t.Fatalf("primary lost partition %d", part)
	}
}

func TestIngestForwardedRequestNeverBounces(t *testing.T) {
	lc, _ := liveCluster(t, 3, t.TempDir())
	node0 := lc.Node(lc.IDs()[0])

	var key uint64
	found := false
	for k := uint64(6_000_000); k < 6_000_500; k++ {
		p := node0.partitionForKey(k)
		if owners := node0.PartitionOwners(p); len(owners) > 0 && owners[0] != node0.ID() {
			key, found = k, true
			break
		}
	}
	if !found {
		t.Skip("no foreign-primary key in probe range")
	}

	// A request already marked as forwarded must NOT hop again: the
	// non-primary reports a per-partition error instead of bouncing.
	body, _ := json.Marshal(IngestRequest{Rows: []WireRow{{Key: key, Vec: []float64{1, 2, 3}}}})
	req, _ := http.NewRequest(http.MethodPost, lc.URL(node0.ID())+"/v1/ingest", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardHeader, "test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.AckedRows != 0 || out.FailedRows != 1 {
		t.Fatalf("forwarded ingest to non-primary must fail, got %+v", out)
	}
	if len(out.Parts) != 1 || !strings.Contains(out.Parts[0].Error, "not the primary") {
		t.Fatalf("expected a not-the-primary error, got %+v", out.Parts)
	}
}

func TestQueryForwardAntiBounceAnswersLocally(t *testing.T) {
	lc, _ := exactCluster(t, 3)
	node0 := lc.Node(lc.IDs()[0])

	// Find a query whose ring owners exclude n0.
	qs := aggStreams(777)[0]
	var q query.Query
	found := false
	for i := 0; i < 200; i++ {
		cand := qs.Next()
		owners := node0.owners(cand)
		isOwner := false
		for _, o := range owners {
			if o == node0.ID() {
				isOwner = true
			}
		}
		if !isOwner {
			q, found = cand, true
			break
		}
	}
	if !found {
		t.Skip("no non-owned query found")
	}

	// Without the header, the non-owner proxies to a ring owner.
	post := func(withHeader bool) QueryResponse {
		t.Helper()
		body, _ := json.Marshal(queryToWire(q, ""))
		req, _ := http.NewRequest(http.MethodPost, lc.URL(node0.ID())+"/v1/query", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if withHeader {
			req.Header.Set(forwardHeader, "test")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d", resp.StatusCode)
		}
		var out QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	proxied := post(false)
	if proxied.Node == node0.ID() {
		t.Fatalf("non-owner answered an owned query locally without the forward header")
	}
	owners := node0.owners(q)
	isOwner := false
	for _, o := range owners {
		if o == proxied.Node {
			isOwner = true
		}
	}
	if !isOwner {
		t.Fatalf("proxied query answered by %s, not a ring owner %v", proxied.Node, owners)
	}

	// With the header, the same non-owner must answer locally — the
	// anti-bounce guarantee that stops forwarding loops outright.
	bounced := post(true)
	if bounced.Node != node0.ID() {
		t.Fatalf("forwarded query hopped again: answered by %s, want %s", bounced.Node, node0.ID())
	}
}

func TestReplicateGapHealsInline(t *testing.T) {
	lc, _ := liveCluster(t, 3, t.TempDir())
	node0 := lc.Node(lc.IDs()[0])

	// Pick a partition whose primary is n0 with a distinct replica.
	part := -1
	var replica *Node
	for p := 0; p < node0.Partitions(); p++ {
		owners := node0.PartitionOwners(p)
		if len(owners) >= 2 && owners[0] == node0.ID() {
			part, replica = p, lc.Node(owners[1])
			break
		}
	}
	if part < 0 || replica == nil {
		t.Skip("no n0-primary partition with a replica")
	}

	// Create a replication gap: apply a batch on the primary only (as
	// if the replica's connection dropped mid-replication).
	seq := node0.PartLastSeq(part) + 1
	gapRows := []storage.Row{{Key: 42_000_000, Vec: []float64{1, 2, 3}}}
	if err := node0.applyBatch(part, seq, gapRows, true, nil); err != nil {
		t.Fatal(err)
	}
	if replica.PartLastSeq(part) != seq-1 {
		t.Fatalf("replica unexpectedly has seq %d", replica.PartLastSeq(part))
	}

	// Ingest the next batch through the normal path: the replica sees a
	// sequence gap, heals inline from the primary's WAL, and acks.
	var batch []storage.Row
	for k := uint64(43_000_000); len(batch) == 0; k++ {
		if node0.partitionForKey(k) == part {
			batch = append(batch, storage.Row{Key: k, Vec: []float64{4, 5, 6}})
		}
	}
	pr := node0.primaryIngest(part, batch, "", 0, nil)
	if !pr.Acked {
		t.Fatalf("gapped replica did not heal: %+v", pr)
	}
	if got := replica.PartLastSeq(part); got != seq+1 {
		t.Fatalf("replica lastSeq = %d after heal, want %d", got, seq+1)
	}
	// Both holders now hold identical state, including the gap batch.
	probe := wholeSpace(query.Var, 2)
	a, _ := node0.PartialState(part, probe)
	b, _ := replica.PartialState(part, probe)
	if len(a) != len(b) {
		t.Fatalf("partial widths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("healed replica diverges at %d: %v != %v", i, a[i], b[i])
		}
	}
}
