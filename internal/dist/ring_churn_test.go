package dist

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// TestRingMinimalMovement: consistent hashing's whole point — adding one
// node to an N-node ring must remap only about 1/(N+1) of the partition
// keys. We allow 2x the ideal share plus a small absolute slack for
// hash noise at small N; a modulo-style placement would move ~N/(N+1)
// of the keys and fail this immediately.
func TestRingMinimalMovement(t *testing.T) {
	const parts = 128
	for n := 3; n <= 8; n++ {
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("n%d", i)
		}
		before := NewRing(0, ids...)
		after := NewRing(0, ids...)
		after.Add(fmt.Sprintf("n%d", n))
		moved := 0
		for p := 0; p < parts; p++ {
			if before.Primary(partKey(p)) != after.Primary(partKey(p)) {
				moved++
			}
		}
		limit := 2*parts/(n+1) + 8
		if moved > limit {
			t.Errorf("N=%d: adding one node moved %d/%d primaries, want <= %d", n, moved, parts, limit)
		}
		if moved == 0 {
			t.Errorf("N=%d: adding one node moved nothing — the new node got no keys", n)
		}
	}
}

// TestRingChurnAddRemoveRestores: Remove must be the exact inverse of
// Add — the ring layout is a pure function of the member set, so
// add-then-remove has to restore every owner list bit-for-bit. This is
// the regression test for the in-place filtering bug in Remove, which
// corrupted the shared points array and broke exactly this property
// for any ring snapshot taken before the removal.
func TestRingChurnAddRemoveRestores(t *testing.T) {
	const parts = 128
	r := NewRing(0, "n0", "n1", "n2", "n3")
	want := make([][]string, parts)
	for p := 0; p < parts; p++ {
		want[p] = r.Owners(partKey(p), 2)
	}
	r.Add("n4")
	r.Remove("n4")
	for p := 0; p < parts; p++ {
		got := r.Owners(partKey(p), 2)
		if !equalStrings(got, want[p]) {
			t.Fatalf("partition %d: owners %v after add+remove, want %v", p, got, want[p])
		}
	}
	if r.Digest() != NewRing(0, "n0", "n1", "n2", "n3").Digest() {
		t.Fatal("digest differs after add+remove round trip")
	}
}

// TestRingChurnInvariants drives 500 random add/remove operations and
// checks the ownership invariants after every step: Owners never
// returns duplicates, never returns a departed node, always returns
// min(R, members) owners, and Primary is always Owners[0].
func TestRingChurnInvariants(t *testing.T) {
	const (
		ops      = 500
		parts    = 32
		replicas = 2
	)
	rng := rand.New(rand.NewPCG(42, 7))
	r := NewRing(0, "m0", "m1", "m2")
	alive := map[string]bool{"m0": true, "m1": true, "m2": true}
	next := 3
	for op := 0; op < ops; op++ {
		if len(alive) <= 1 || (len(alive) < 10 && rng.IntN(2) == 0) {
			id := fmt.Sprintf("m%d", next)
			next++
			r.Add(id)
			alive[id] = true
		} else {
			var victim string
			k := rng.IntN(len(alive))
			for id := range alive {
				if k == 0 {
					victim = id
					break
				}
				k--
			}
			r.Remove(victim)
			delete(alive, victim)
		}
		if r.Len() != len(alive) {
			t.Fatalf("op %d: ring has %d members, model has %d", op, r.Len(), len(alive))
		}
		wantLen := replicas
		if len(alive) < wantLen {
			wantLen = len(alive)
		}
		for p := 0; p < parts; p++ {
			owners := r.Owners(partKey(p), replicas)
			if len(owners) != wantLen {
				t.Fatalf("op %d part %d: %d owners, want %d", op, p, len(owners), wantLen)
			}
			seen := map[string]bool{}
			for _, o := range owners {
				if seen[o] {
					t.Fatalf("op %d part %d: duplicate owner %s in %v", op, p, o, owners)
				}
				seen[o] = true
				if !alive[o] {
					t.Fatalf("op %d part %d: departed owner %s in %v", op, p, o, owners)
				}
			}
			if primary := r.Primary(partKey(p)); primary != owners[0] {
				t.Fatalf("op %d part %d: Primary %s != Owners[0] %s", op, p, primary, owners[0])
			}
		}
	}
}
