package dist

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/internal/workload"
)

// testRows builds the standard 3-column clustered dataset (x, y spatial;
// z = 2x + 5 + noise).
func testRows(n int, seed int64) []storage.Row {
	return workload.StandardRows(n, seed)
}

// exactCluster starts a cluster whose agents never predict (training
// never ends), so every answer exercises the scatter-gather exact path.
func exactCluster(t *testing.T, nodes int) (*LocalCluster, []storage.Row) {
	t.Helper()
	rows := testRows(4_000, 11)
	cfg := core.DefaultConfig(2)
	cfg.TrainingQueries = 1 << 30
	lc, err := StartLocal(nodes, Config{Agent: cfg, Replicas: 2}, rows)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	return lc, rows
}

// aggStreams returns one query stream per supported aggregate.
func aggStreams(seed int64) []*workload.QueryStream {
	mk := func(off int64, agg query.Agg) *workload.QueryStream {
		qs := workload.NewQueryStream(workload.NewRNG(seed+off), workload.DefaultRegions(2), agg)
		switch agg {
		case query.Sum, query.Avg, query.Var:
			qs.Col = 2
		case query.Corr, query.RegSlope:
			qs.Col, qs.Col2 = 0, 2
		}
		return qs
	}
	return []*workload.QueryStream{
		mk(0, query.Count), mk(10, query.Sum), mk(20, query.Avg),
		mk(30, query.Var), mk(40, query.Corr), mk(50, query.RegSlope),
	}
}

// closeEnough compares a distributed answer against the single-node
// reference: bit-equal for COUNT, within float-merge tolerance for the
// moment-merged aggregates (partition sums associate differently).
func closeEnough(agg query.Agg, got, want float64) bool {
	if agg == query.Count {
		return got == want
	}
	return math.Abs(got-want) <= 1e-9*math.Max(1, math.Abs(want))
}

// TestClusterAggregateSuiteMatchesSingleNode is the correctness half of
// the acceptance scenario: a 3-node cluster answers COUNT/SUM/AVG/VAR/
// CORR (and REGSLOPE) with the same results as evaluating the query over
// the full dataset on one node.
func TestClusterAggregateSuiteMatchesSingleNode(t *testing.T) {
	lc, rows := exactCluster(t, 3)
	client := lc.Client()
	for _, qs := range aggStreams(100) {
		for i := 0; i < 15; i++ {
			q := qs.Next()
			got, err := client.Answer(q)
			if err != nil {
				t.Fatalf("%v query %d: %v", q.Aggregate, i, err)
			}
			if got.Predicted {
				t.Fatalf("%v query %d: predicted during training-only test", q.Aggregate, i)
			}
			want := query.EvalRows(q, rows).Value
			if !closeEnough(q.Aggregate, got.Value, want) {
				t.Fatalf("%v query %d: cluster %v, single-node %v", q.Aggregate, i, got.Value, want)
			}
			if got.Cost.RowsRead != int64(len(rows)) {
				t.Fatalf("%v query %d: scatter read %d rows, want full coverage %d",
					q.Aggregate, i, got.Cost.RowsRead, len(rows))
			}
		}
	}
}

// TestClusterForwardsToOwners: a query POSTed to a non-owner must be
// answered by one of the key's ring owners (forwarding), and the
// /v1/cluster endpoint must report full membership.
func TestClusterForwardsToOwners(t *testing.T) {
	lc, _ := exactCluster(t, 3)
	client := lc.Client()

	qs := aggStreams(300)[0]
	forwarded := 0
	for i := 0; i < 30 && forwarded == 0; i++ {
		q := qs.Next()
		owners := lc.Node("n0").owners(q)
		isOwner := map[string]bool{}
		for _, o := range owners {
			isOwner[o] = true
		}
		var outsider string
		for _, id := range lc.IDs() {
			if !isOwner[id] {
				outsider = id
				break
			}
		}
		if outsider == "" {
			continue // replication covers all nodes for this key
		}
		body, err := json.Marshal(queryToWire(q, "fwd"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(lc.URL(outsider)+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !isOwner[out.Node] {
			t.Fatalf("query owned by %v was answered by %s (no forwarding)", owners, out.Node)
		}
		forwarded++
	}
	if forwarded == 0 {
		t.Fatal("never found a non-owner to exercise forwarding")
	}

	st, err := client.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Members) != 3 || st.PartitionsTotal == 0 || st.RowsHeld == 0 {
		t.Errorf("implausible cluster status: %+v", st)
	}
}

// TestClusterSurvivesNodeKillMidStream is the failover half of the
// acceptance scenario: one node dies mid-stream and the client sees no
// errors — its queries fail over to the surviving replicas, including
// the scatter path re-fetching the dead node's partitions from theirs.
func TestClusterSurvivesNodeKillMidStream(t *testing.T) {
	lc, rows := exactCluster(t, 3)
	client := lc.Client()
	streams := aggStreams(200)

	ask := func(i int) {
		t.Helper()
		qs := streams[i%len(streams)]
		q := qs.Next()
		got, err := client.Answer(q)
		if err != nil {
			t.Fatalf("query %d (%v): client-visible error: %v", i, q.Aggregate, err)
		}
		want := query.EvalRows(q, rows).Value
		if !closeEnough(q.Aggregate, got.Value, want) {
			t.Fatalf("query %d (%v): cluster %v, single-node %v", i, q.Aggregate, got.Value, want)
		}
	}

	for i := 0; i < 12; i++ {
		ask(i)
	}
	lc.Kill("n1")
	for i := 12; i < 48; i++ {
		ask(i)
	}
}

// TestSnapshotShippingWarmsReplica: a killed node revived with model
// shipping must serve bit-identical predictions to its donor without
// re-training.
func TestSnapshotShippingWarmsReplica(t *testing.T) {
	rows := testRows(4_000, 11)
	agentCfg := core.DefaultConfig(2)
	agentCfg.TrainingQueries = 100
	lc, err := StartLocal(3, Config{Agent: agentCfg, Replicas: 2}, rows)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	// Train the donor node past its prefix; its exact answers
	// scatter-gather across the live cluster while it learns.
	qs := workload.NewQueryStream(workload.NewRNG(500), workload.DefaultRegions(2), query.Count)
	for i := 0; i < 250; i++ {
		if _, err := lc.Node("n0").Answer("train", qs.Next()); err != nil {
			t.Fatalf("training query %d: %v", i, err)
		}
	}

	donor := lc.Node("n0").Pool().Agents()[0]
	if donor.Stats().Predicted == 0 {
		t.Fatal("donor never reached the prediction path; shipping test proves nothing")
	}

	lc.Kill("n2")
	// Allow the dead listener to fully release before rebinding.
	time.Sleep(10 * time.Millisecond)
	shipped, err := lc.Revive("n2", "n0")
	if err != nil {
		t.Fatal(err)
	}
	if shipped == 0 {
		t.Fatal("snapshot ship moved zero bytes")
	}

	revived := lc.Node("n2").Pool().Agents()[0]
	probe := workload.NewQueryStream(workload.NewRNG(501), workload.DefaultRegions(2), query.Count)
	var predictions int
	for i := 0; i < 100; i++ {
		q := probe.Next()
		v1, e1, ok1 := donor.PredictOnly(q)
		v2, e2, ok2 := revived.PredictOnly(q)
		if ok1 != ok2 || v1 != v2 || e1 != e2 {
			t.Fatalf("probe %d: donor (%v,%v,%v) != revived (%v,%v,%v)", i, v1, e1, ok1, v2, e2, ok2)
		}
		if ok1 {
			predictions++
		}
	}
	if predictions == 0 {
		t.Fatal("trained donor predicted nothing; warm-up test proves nothing")
	}

	// The revived node serves those predictions itself over HTTP.
	ans, err := lc.Node("n2").Answer("warm", probeQueryFor(t, donor, 502))
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Predicted {
		t.Error("revived node fell back to the oracle for a query its shipped model covers")
	}
}

// probeQueryFor scans a stream for a query the agent answers from its
// model.
func probeQueryFor(t *testing.T, ag *core.Agent, seed int64) query.Query {
	t.Helper()
	qs := workload.NewQueryStream(workload.NewRNG(seed), workload.DefaultRegions(2), query.Count)
	for i := 0; i < 200; i++ {
		q := qs.Next()
		if _, _, ok := ag.PredictOnly(q); ok {
			return q
		}
	}
	t.Fatal("no predictable probe query found")
	return query.Query{}
}

// TestQueryKeyRoutingIsStable: identical queries must route to identical
// owner sets across client and every node (shared ring).
func TestQueryKeyRoutingIsStable(t *testing.T) {
	lc, _ := exactCluster(t, 3)
	client := lc.Client()
	qs := aggStreams(400)[0]
	for i := 0; i < 20; i++ {
		q := qs.Next()
		key := serve.Key(q)
		cring, _ := client.snapshot()
		want := cring.Owners(key, 2)
		for _, id := range lc.IDs() {
			if got := lc.Node(id).Ring().Owners(key, 2); !equalStrings(got, want) {
				t.Fatalf("node %s owners %v != client owners %v", id, got, want)
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
