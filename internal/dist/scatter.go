package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/query"
)

// scatterOracle is the exact engine behind each node's agents: a query
// that needs the exact path is scatter-gathered across the cluster's
// data partitions and merged with the distributable aggregate kernels
// in internal/query. The agent serialises oracle calls under its write
// lock, so the oracle itself needs no extra synchronisation beyond the
// node's read-only partition map.
type scatterOracle struct {
	n *Node
}

func (o scatterOracle) Answer(q query.Query) (query.Result, metrics.Cost, error) {
	return o.n.ScatterGather(q)
}

// DataVersion tracks the node's live data version: the bulk load is
// version 1 and every applied ingest batch advances it. Agents absorb
// the same version through AbsorbRows, so the fast path stays live
// across ingest (incremental maintenance) while legacy agents see the
// change and invalidate.
func (o scatterOracle) DataVersion() int64 { return o.n.DataVersion() }

type partialResult struct {
	partial []float64
	rows    int64
	remote  bool
	holder  string
	err     error
}

// ScatterGather computes q's exact answer across every data partition:
// local partitions are evaluated in place, remote ones are fetched from
// their holders (POST /v1/partial) with replica failover, and the
// per-partition aggregate states merge exactly (COUNT/SUM) or from
// per-shard moments (AVG/VAR/CORR) via query.MergeEval.
func (n *Node) ScatterGather(q query.Query) (query.Result, metrics.Cost, error) {
	start := time.Now()
	// Validate aggregate columns against the local schema (adopted from
	// the data) before fanning out: a malformed query fails loudly here
	// instead of summing silent zeros across the cluster.
	if w := n.schemaWidth(); w >= 0 {
		if err := q.ValidateCols(w); err != nil {
			return query.Result{}, metrics.Cost{}, err
		}
	}
	results := make([]partialResult, n.cfg.Partitions)
	var wg sync.WaitGroup
	wg.Add(n.cfg.Partitions)
	for p := 0; p < n.cfg.Partitions; p++ {
		go func(p int) {
			defer wg.Done()
			results[p] = n.gatherPartition(p, q)
		}(p)
	}
	wg.Wait()

	partials := make([][]float64, 0, len(results))
	cost := metrics.Cost{}
	holders := make(map[string]bool)
	for p, r := range results {
		if r.err != nil {
			return query.Result{}, metrics.Cost{}, fmt.Errorf("dist: partition %d: %w", p, r.err)
		}
		partials = append(partials, r.partial)
		cost.RowsRead += r.rows
		holders[r.holder] = true
		if r.remote {
			// One request + one 8-slot aggregate state back.
			cost.Messages += 2
			cost.BytesLAN += int64(8*len(r.partial)) + 128
		}
	}
	res := query.MergeEval(q, partials)
	elapsed := time.Since(start)
	cost.Time = elapsed
	cost.CPUTime = elapsed
	cost.NodesTouched = len(holders)
	return res, cost, nil
}

// gatherPartition fetches partition p's aggregate state from its holders
// in ring order, starting with this node when it is a holder. Local
// partitions run the vectorized columnar kernel behind a zone-map check
// (a partition that cannot intersect the selection contributes a zero
// state for zero rows read).
func (n *Node) gatherPartition(p int, q query.Query) partialResult {
	if partial, rowsRead, ok := n.localPartial(p, q); ok {
		return partialResult{partial: partial, rows: rowsRead, holder: n.id}
	}
	var lastErr error
	for _, holder := range n.ring.Owners(partKey(p), n.cfg.Replicas) {
		if holder == n.id {
			continue
		}
		url, ok := n.cfg.Peers[holder]
		if !ok || !n.health.available(url) {
			continue
		}
		pr, err := n.fetchPartial(url, p, q)
		if err != nil {
			lastErr = err
			n.health.markDownOn(url, err)
			continue
		}
		pr.holder = holder
		pr.remote = true
		return pr
	}
	return partialResult{err: errAllReplicas(fmt.Sprintf("partition %d", p), lastErr)}
}

func (n *Node) fetchPartial(url string, p int, q query.Query) (partialResult, error) {
	body, err := json.Marshal(PartialRequest{Part: p, Query: queryToWire(q, "")})
	if err != nil {
		return partialResult{}, err
	}
	resp, err := n.hc.Post(url+"/v1/partial", "application/json", bytes.NewReader(body))
	if err != nil {
		return partialResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return partialResult{}, fmt.Errorf("partial from %s: HTTP %d: %w", url, resp.StatusCode, errPeerResponded)
	}
	var pr PartialResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return partialResult{}, err
	}
	return partialResult{partial: pr.Partial, rows: pr.Rows}, nil
}
