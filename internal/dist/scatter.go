package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/trace"
)

// scatterOracle is the exact engine behind each node's agents: a query
// that needs the exact path is scatter-gathered across the cluster's
// data partitions and merged with the distributable aggregate kernels
// in internal/query. The agent serialises oracle calls under its write
// lock, so the oracle itself needs no extra synchronisation beyond the
// node's read-only partition map.
type scatterOracle struct {
	n *Node
}

func (o scatterOracle) Answer(q query.Query) (query.Result, metrics.Cost, error) {
	return o.n.ScatterGather(q)
}

// AnswerSpan is the traced oracle hook (core.SpanOracle): the agent's
// fallback span becomes the parent of the scatter-gather's local-scan,
// per-holder RPC and merge spans.
func (o scatterOracle) AnswerSpan(q query.Query, sp *trace.Span) (query.Result, metrics.Cost, error) {
	return o.n.ScatterGatherSpan(q, sp)
}

// DataVersion tracks the node's live data version: the bulk load is
// version 1 and every applied ingest batch advances it. Agents absorb
// the same version through AbsorbRows, so the fast path stays live
// across ingest (incremental maintenance) while legacy agents see the
// change and invalidate. The serving layer's answer cache stamps its
// entries with the same version, so an applied batch also expires every
// cached answer it could have staled.
func (o scatterOracle) DataVersion() int64 { return o.n.DataVersion() }

type partialResult struct {
	partial []float64
	rows    int64
	holder  string
}

// jsonBufPool pools the request/response buffers of the batched partial
// RPCs so a scatter under load does not churn a fresh buffer per round
// trip.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// ScatterGather computes q's exact answer across every data partition:
// local partitions are evaluated in place, remote ones are fetched from
// their ring holders, and the per-partition aggregate states merge
// exactly (COUNT/SUM) or from per-shard moments (AVG/VAR/CORR) via
// query.MergeEval.
//
// The fan-out is message-minimal and bounded: missing partitions are
// grouped by holder and fetched with ONE batched POST /v1/partials per
// holder (not one RPC per partition), all work runs on a worker pool of
// at most Config.GatherFanout goroutines, and a holder failure
// re-batches just its leftover partitions onto the next replicas. Cost
// accounting reflects the batched shape: Messages counts 2 per RPC
// round trip, BytesLAN the actual request+response payload bytes, and
// NodesTouched the distinct holders that contributed states.
func (n *Node) ScatterGather(q query.Query) (query.Result, metrics.Cost, error) {
	return n.ScatterGatherSpan(q, nil)
}

// ScatterGatherSpan is ScatterGather under a (possibly nil) parent span:
// the local vectorized scan, each per-holder batched partial RPC, and
// the final merge get child spans, and holders asked under a trace
// return their own span trees, which are grafted under the matching
// partial_rpc span — one stitched tree across node boundaries.
func (n *Node) ScatterGatherSpan(q query.Query, sp *trace.Span) (query.Result, metrics.Cost, error) {
	start := time.Now()
	// Validate aggregate columns against the local schema (adopted from
	// the data) before fanning out: a malformed query fails loudly here
	// instead of summing silent zeros across the cluster.
	if w := n.schemaWidth(); w >= 0 {
		if err := q.ValidateCols(w); err != nil {
			return query.Result{}, metrics.Cost{}, err
		}
	}
	results := make([]partialResult, n.cfg.Partitions)
	lsp := sp.Child("local_scan")
	missing := n.gatherLocal(q, results)
	lsp.End()
	lsp.SetAttrInt("parts", int64(n.cfg.Partitions-len(missing)))
	cost := metrics.Cost{}
	if len(missing) > 0 {
		rpcBytes, rpcs, err := n.gatherRemote(q, missing, results, sp)
		if err != nil {
			return query.Result{}, metrics.Cost{}, err
		}
		cost.Messages += 2 * int64(rpcs) // one request + one response per holder round trip
		cost.BytesLAN += rpcBytes
	}

	msp := sp.Child("merge")
	partials := make([][]float64, 0, len(results))
	holders := make(map[string]bool)
	for p := range results {
		r := &results[p]
		if r.partial == nil {
			return query.Result{}, metrics.Cost{}, fmt.Errorf("dist: partition %d unresolved", p)
		}
		partials = append(partials, r.partial)
		cost.RowsRead += r.rows
		holders[r.holder] = true
	}
	res := query.MergeEval(q, partials)
	msp.End()
	elapsed := time.Since(start)
	cost.Time = elapsed
	cost.CPUTime = elapsed
	cost.NodesTouched = len(holders)
	sp.SetAttrInt("nodes", int64(len(holders)))
	return res, cost, nil
}

// gatherLocal evaluates every locally-held partition on the bounded
// worker pool and returns the partitions this node does not hold.
func (n *Node) gatherLocal(q query.Query, results []partialResult) []int {
	n.mu.RLock()
	held := make([]int, 0, len(n.parts))
	for p := range n.parts {
		held = append(held, p)
	}
	n.mu.RUnlock()
	isHeld := make(map[int]bool, len(held))
	for _, p := range held {
		isHeld[p] = true
	}
	var missing []int
	for p := 0; p < n.cfg.Partitions; p++ {
		if !isHeld[p] {
			missing = append(missing, p)
		}
	}
	runBounded(n.cfg.GatherFanout, len(held), func(i int) {
		p := held[i]
		if partial, rows, ok := n.localPartial(p, q); ok {
			results[p] = partialResult{partial: partial, rows: rows, holder: n.id}
		}
	})
	return missing
}

// gatherRemote resolves the missing partitions: each round groups the
// still-unresolved partitions by their next untried ring holder, issues
// one batched /v1/partials RPC per holder on the bounded pool, and
// re-batches whatever a holder failed to deliver (transport error, or a
// per-partition "not held" entry) onto the next replicas. It returns
// the total wire bytes moved and the RPC round trips issued. Under a
// trace each holder round trip gets a partial_rpc child span carrying
// the holder's returned span tree.
func (n *Node) gatherRemote(q query.Query, missing []int, results []partialResult, sp *trace.Span) (int64, int, error) {
	wire := queryToWire(q, "")
	// Per-partition remote holder candidates in ring order, consumed by
	// a cursor as failovers advance.
	cand := make(map[int][]string, len(missing))
	next := make(map[int]int, len(missing))
	for _, p := range missing {
		for _, h := range n.ring.Owners(partKey(p), n.cfg.Replicas) {
			if h != n.id {
				cand[p] = append(cand[p], h)
			}
		}
	}

	var bytesMoved int64
	var rpcs int
	var lastErr error
	unresolved := append([]int(nil), missing...)
	for len(unresolved) > 0 {
		groups := make(map[string][]int)
		for _, p := range unresolved {
			var holder string
			for next[p] < len(cand[p]) {
				h := cand[p][next[p]]
				next[p]++
				url, ok := n.cfg.Peers[h]
				if ok && n.health.available(url) {
					holder = h
					break
				}
			}
			if holder == "" {
				return bytesMoved, rpcs, errAllReplicas(fmt.Sprintf("partition %d", p), lastErr)
			}
			groups[holder] = append(groups[holder], p)
		}

		type rpcOut struct {
			holder string
			parts  []int
			resp   []PartPartial
			bytes  int64
			err    error
		}
		outs := make([]rpcOut, 0, len(groups))
		for h, ps := range groups {
			sort.Ints(ps)
			outs = append(outs, rpcOut{holder: h, parts: ps})
		}
		sort.Slice(outs, func(i, j int) bool { return outs[i].holder < outs[j].holder })
		runBounded(n.cfg.GatherFanout, len(outs), func(i int) {
			o := &outs[i]
			url := n.cfg.Peers[o.holder]
			// Span.Child is safe under concurrent workers; a nil sp
			// keeps the whole branch free.
			rsp := sp.Child("partial_rpc")
			o.resp, o.bytes, o.err = n.fetchPartials(url, o.parts, wire, rsp)
			rsp.End()
			rsp.SetAttr("holder", o.holder)
			rsp.SetAttrInt("parts", int64(len(o.parts)))
			if o.err != nil {
				rsp.SetAttr("error", o.err.Error())
				n.health.markDownOn(url, o.err)
			}
		})

		unresolved = unresolved[:0]
		for _, o := range outs {
			if o.err != nil {
				lastErr = o.err
				unresolved = append(unresolved, o.parts...)
				continue
			}
			rpcs++
			bytesMoved += o.bytes
			got := make(map[int]bool, len(o.resp))
			for _, e := range o.resp {
				if e.Error != "" || e.Partial == nil {
					continue
				}
				if e.Part < 0 || e.Part >= len(results) {
					continue
				}
				got[e.Part] = true
				results[e.Part] = partialResult{
					partial: e.Partial, rows: e.Rows, holder: o.holder,
				}
			}
			for _, p := range o.parts {
				if !got[p] {
					unresolved = append(unresolved, p)
				}
			}
		}
	}
	return bytesMoved, rpcs, nil
}

// fetchPartials runs one batched partials round trip against a holder,
// returning its per-partition entries and the request+response payload
// bytes. Both JSON buffers come from the shared pool. A non-nil span
// asks the holder for its own span tree and grafts it underneath.
func (n *Node) fetchPartials(url string, parts []int, wq serve.QueryRequest, sp *trace.Span) ([]PartPartial, int64, error) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer jsonBufPool.Put(buf)
	if err := json.NewEncoder(buf).Encode(PartialsRequest{Parts: parts, Query: wq, Trace: sp != nil}); err != nil {
		return nil, 0, err
	}
	reqBytes := int64(buf.Len())
	resp, err := n.hc.Post(url+"/v1/partials", "application/json", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("partials from %s: HTTP %d: %w", url, resp.StatusCode, errPeerResponded)
	}
	rb := jsonBufPool.Get().(*bytes.Buffer)
	rb.Reset()
	defer jsonBufPool.Put(rb)
	if _, err := rb.ReadFrom(io.LimitReader(resp.Body, 64<<20)); err != nil {
		return nil, 0, err
	}
	var pr PartialsResponse
	if err := json.Unmarshal(rb.Bytes(), &pr); err != nil {
		return nil, 0, err
	}
	sp.AttachWire(pr.Spans)
	n.partialsSent.Add(1)
	return pr.Partials, reqBytes + int64(rb.Len()), nil
}

// runBounded runs fn(0..n-1) on at most fanout worker goroutines and
// waits for completion — the bounded replacement for the old
// goroutine-per-partition spawn.
func runBounded(fanout, n int, fn func(i int)) {
	if n == 0 {
		return
	}
	if fanout <= 0 || fanout > n {
		fanout = n
	}
	if fanout == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	work := make(chan int)
	var wg sync.WaitGroup
	wg.Add(fanout)
	for w := 0; w < fanout; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}
