package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/trace"
)

// scatterOracle is the exact engine behind each node's agents: a query
// that needs the exact path is scatter-gathered across the cluster's
// data partitions and merged with the distributable aggregate kernels
// in internal/query. The agent serialises oracle calls under its write
// lock, so the oracle itself needs no extra synchronisation beyond the
// node's read-only partition map.
type scatterOracle struct {
	n *Node
}

func (o scatterOracle) Answer(q query.Query) (query.Result, metrics.Cost, error) {
	return o.n.ScatterGather(q)
}

// AnswerSpan is the traced oracle hook (core.SpanOracle): the agent's
// fallback span becomes the parent of the scatter-gather's local-scan,
// per-holder RPC and merge spans.
func (o scatterOracle) AnswerSpan(q query.Query, sp *trace.Span) (query.Result, metrics.Cost, error) {
	return o.n.ScatterGatherSpan(q, sp)
}

// DataVersion tracks the node's live data version: the bulk load is
// version 1 and every applied ingest batch advances it. Agents absorb
// the same version through AbsorbRows, so the fast path stays live
// across ingest (incremental maintenance) while legacy agents see the
// change and invalidate. The serving layer's answer cache stamps its
// entries with the same version, so an applied batch also expires every
// cached answer it could have staled.
func (o scatterOracle) DataVersion() int64 { return o.n.DataVersion() }

type partialResult struct {
	partial []float64
	rows    int64
	holder  string
}

// jsonBufPool pools the request/response buffers of the batched partial
// RPCs so a scatter under load does not churn a fresh buffer per round
// trip.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// ScatterGather computes q's exact answer across every data partition:
// local partitions are evaluated in place, remote ones are fetched from
// their ring holders, and the per-partition aggregate states merge
// exactly (COUNT/SUM) or from per-shard moments (AVG/VAR/CORR) via
// query.MergeEval.
//
// The fan-out is message-minimal and bounded: missing partitions are
// grouped by holder and fetched with ONE batched POST /v1/partials per
// holder (not one RPC per partition), all work runs on a worker pool of
// at most Config.GatherFanout goroutines, and a holder failure
// re-batches just its leftover partitions onto the next replicas. Cost
// accounting reflects the batched shape: Messages counts 2 per RPC
// round trip, BytesLAN the actual request+response payload bytes, and
// NodesTouched the distinct holders that contributed states.
//
// Resilience: a propagated deadline bounds every remote round trip and
// refuses dead-on-arrival work; exhausted candidate lists are re-walked
// under a per-query retry budget with exponential backoff + jitter;
// slow holders are hedged to a second replica after a quantile-based
// delay; and when a partition's holders are ALL gone, the merge
// degrades to the covered partitions (query.Extrapolate) instead of
// failing — unless Config.NoDegrade restores the old fail-hard
// behaviour.
func (n *Node) ScatterGather(q query.Query) (query.Result, metrics.Cost, error) {
	return n.ScatterGatherSpan(q, nil)
}

// ScatterGatherSpan is ScatterGather under a (possibly nil) parent span:
// the local vectorized scan, each per-holder batched partial RPC, and
// the final merge get child spans, and holders asked under a trace
// return their own span trees, which are grafted under the matching
// partial_rpc span — one stitched tree across node boundaries.
func (n *Node) ScatterGatherSpan(q query.Query, sp *trace.Span) (query.Result, metrics.Cost, error) {
	start := time.Now()
	if !q.Deadline.IsZero() && !start.Before(q.Deadline) {
		return query.Result{}, metrics.Cost{}, serve.ErrDeadline
	}
	// Validate aggregate columns against the local schema (adopted from
	// the data) before fanning out: a malformed query fails loudly here
	// instead of summing silent zeros across the cluster.
	if w := n.schemaWidth(); w >= 0 {
		if err := q.ValidateCols(w); err != nil {
			return query.Result{}, metrics.Cost{}, err
		}
	}
	results := make([]partialResult, n.cfg.Partitions)
	lsp := sp.Child("local_scan")
	missing := n.gatherLocal(q, results)
	lsp.End()
	lsp.SetAttrInt("parts", int64(n.cfg.Partitions-len(missing)))
	cost := metrics.Cost{}
	var remoteErr error
	if len(missing) > 0 {
		rpcBytes, rpcs, err := n.gatherRemote(q, missing, results, sp)
		remoteErr = err
		cost.Messages += 2 * int64(rpcs) // one request + one response per holder round trip
		cost.BytesLAN += rpcBytes
	}

	msp := sp.Child("merge")
	partials := make([][]float64, 0, len(results))
	holders := make(map[string]bool)
	uncovered := 0
	for p := range results {
		r := &results[p]
		if r.partial == nil {
			if remoteErr == nil {
				remoteErr = fmt.Errorf("dist: partition %d unresolved", p)
			}
			uncovered++
			continue
		}
		partials = append(partials, r.partial)
		cost.RowsRead += r.rows
		holders[r.holder] = true
	}
	covered := n.cfg.Partitions - uncovered
	if uncovered > 0 && (n.cfg.NoDegrade || covered == 0) {
		msp.End()
		return query.Result{}, metrics.Cost{}, remoteErr
	}
	res := query.MergeEval(q, partials)
	if uncovered > 0 {
		res = query.Extrapolate(q, res, float64(covered)/float64(n.cfg.Partitions))
		msp.SetAttrFloat("coverage", res.Coverage)
	}
	msp.End()
	elapsed := time.Since(start)
	cost.Time = elapsed
	cost.CPUTime = elapsed
	cost.NodesTouched = len(holders)
	sp.SetAttrInt("nodes", int64(len(holders)))
	return res, cost, nil
}

// gatherLocal evaluates every locally-held partition on the bounded
// worker pool and returns the partitions this node does not hold.
func (n *Node) gatherLocal(q query.Query, results []partialResult) []int {
	n.mu.RLock()
	held := make([]int, 0, len(n.parts))
	for p := range n.parts {
		held = append(held, p)
	}
	n.mu.RUnlock()
	isHeld := make(map[int]bool, len(held))
	for _, p := range held {
		isHeld[p] = true
	}
	var missing []int
	for p := 0; p < n.cfg.Partitions; p++ {
		if !isHeld[p] {
			missing = append(missing, p)
		}
	}
	runBounded(n.cfg.GatherFanout, len(held), func(i int) {
		p := held[i]
		if partial, rows, ok := n.localPartial(p, q); ok {
			results[p] = partialResult{partial: partial, rows: rows, holder: n.id}
		}
	})
	return missing
}

// gatherRemote resolves the missing partitions: each round groups the
// still-unresolved partitions by their next untried ring holder, issues
// one batched /v1/partials RPC per holder on the bounded pool, and
// re-batches whatever a holder failed to deliver (transport error, or a
// per-partition "not held" entry) onto the next replicas. A partition
// whose candidates are all exhausted re-walks them under the per-query
// retry budget (exponential backoff + jitter, deadline-clamped); once
// the budget too is spent the partition is abandoned — left nil in
// results for the caller to degrade over — rather than failing the
// whole query. It returns the total wire bytes moved, the RPC round
// trips issued, and the last error when any partition was abandoned.
// Under a trace each holder round trip gets a partial_rpc child span
// carrying the holder's returned span tree.
func (n *Node) gatherRemote(q query.Query, missing []int, results []partialResult, sp *trace.Span) (int64, int, error) {
	wire := queryToWire(q, "")
	dlMS := deadlineMS(q.Deadline)
	// Per-partition remote holder candidates in ring order, consumed by
	// a cursor as failovers advance.
	cand := make(map[int][]string, len(missing))
	next := make(map[int]int, len(missing))
	ms := n.members()
	for _, p := range missing {
		for _, h := range ms.ring.Owners(partKey(p), n.cfg.Replicas) {
			if h != n.id {
				cand[p] = append(cand[p], h)
			}
		}
	}

	var bytesMoved int64
	var rpcs int
	var lastErr error
	budget := n.cfg.RetryBudget
	backoff := n.cfg.RetryBackoff
	unresolved := append([]int(nil), missing...)
	for len(unresolved) > 0 {
		groups := make(map[string][]int)
		var exhausted, abandoned []int
		for _, p := range unresolved {
			if holder := n.nextHolder(cand[p], next, p); holder != "" {
				groups[holder] = append(groups[holder], p)
			} else {
				exhausted = append(exhausted, p)
			}
		}
		if len(exhausted) > 0 {
			// Candidates exhausted: re-walk them if the retry budget and
			// deadline allow, otherwise abandon the partitions (degraded
			// merge) instead of failing the query. One budget unit buys
			// one re-walk ROUND for every exhausted partition — a single
			// failed batch RPC exhausts all its partitions at once, and
			// charging each of them separately would burn the whole
			// budget on one correlated failure.
			if budget > 0 && (q.Deadline.IsZero() || time.Now().Before(q.Deadline)) {
				budget--
				n.rec().RPCRetry()
				sleepBackoff(&backoff, q.Deadline)
				for _, p := range exhausted {
					next[p] = 0
					if holder := n.nextHolder(cand[p], next, p); holder != "" {
						groups[holder] = append(groups[holder], p)
					} else {
						abandoned = append(abandoned, p)
					}
				}
			} else {
				abandoned = exhausted
			}
			if len(abandoned) > 0 && lastErr == nil {
				lastErr = errAllReplicas(fmt.Sprintf("partition %d", abandoned[0]), nil)
			}
		}

		type rpcOut struct {
			holder string
			parts  []int
			resp   []PartPartial
			bytes  int64
			err    error
		}
		outs := make([]rpcOut, 0, len(groups))
		for h, ps := range groups {
			sort.Ints(ps)
			outs = append(outs, rpcOut{holder: h, parts: ps})
		}
		sort.Slice(outs, func(i, j int) bool { return outs[i].holder < outs[j].holder })
		runBounded(n.cfg.GatherFanout, len(outs), func(i int) {
			o := &outs[i]
			url := ms.urls[o.holder]
			// A hedge candidate: the first abandoned-free partition's
			// next untried available holder (cursor not advanced — a
			// hedge is speculative, not a failover).
			hedgeURL := n.hedgeCandidate(o.parts, cand, next, o.holder)
			// Span.Child is safe under concurrent workers; a nil sp
			// keeps the whole branch free.
			rsp := sp.Child("partial_rpc")
			o.resp, o.bytes, o.err = n.fetchPartialsHedged(url, hedgeURL, o.parts, wire, dlMS, q.Deadline, rsp)
			rsp.End()
			rsp.SetAttr("holder", o.holder)
			rsp.SetAttrInt("parts", int64(len(o.parts)))
			if o.err != nil {
				rsp.SetAttr("error", o.err.Error())
			}
		})

		unresolved = unresolved[:0]
		for _, o := range outs {
			if o.err != nil {
				lastErr = o.err
				unresolved = append(unresolved, o.parts...)
				continue
			}
			rpcs++
			bytesMoved += o.bytes
			got := make(map[int]bool, len(o.resp))
			for _, e := range o.resp {
				if e.Error != "" || e.Partial == nil {
					continue
				}
				if e.Part < 0 || e.Part >= len(results) {
					continue
				}
				got[e.Part] = true
				results[e.Part] = partialResult{
					partial: e.Partial, rows: e.Rows, holder: o.holder,
				}
			}
			for _, p := range o.parts {
				if !got[p] {
					unresolved = append(unresolved, p)
				}
			}
		}
		if len(abandoned) > 0 && len(unresolved) == 0 && len(groups) == 0 {
			break // nothing left but abandoned partitions
		}
	}
	return bytesMoved, rpcs, lastErr
}

// nextHolder advances partition p's candidate cursor to the next
// available holder (health + breaker) and returns it ("" = exhausted).
func (n *Node) nextHolder(cands []string, next map[int]int, p int) string {
	urls := n.members().urls
	for next[p] < len(cands) {
		h := cands[next[p]]
		next[p]++
		url, ok := urls[h]
		if ok && url != "" && n.health.available(url) {
			return h
		}
	}
	return ""
}

// hedgeCandidate picks a holder to hedge a batched RPC to: the first
// still-untried available candidate of any partition in the batch that
// is not the primary holder. Cursors are NOT advanced — if the primary
// answers first the candidate stays fresh for real failovers.
func (n *Node) hedgeCandidate(parts []int, cand map[int][]string, next map[int]int, primary string) string {
	if n.hedgeDelay() <= 0 {
		return ""
	}
	urls := n.members().urls
	for _, p := range parts {
		for i := next[p]; i < len(cand[p]); i++ {
			h := cand[p][i]
			if h == primary {
				continue
			}
			if url, ok := urls[h]; ok && url != "" && n.health.available(url) {
				return url
			}
		}
	}
	return ""
}

// sleepBackoff sleeps *backoff plus up to +100% jitter (clamped to the
// deadline) and doubles the backoff for the next use.
func sleepBackoff(backoff *time.Duration, deadline time.Time) {
	d := *backoff + time.Duration(rand.Int64N(int64(*backoff)))
	if !deadline.IsZero() {
		if left := time.Until(deadline); left < d {
			d = left
		}
	}
	if d > 0 {
		time.Sleep(d)
	}
	*backoff *= 2
}

// fetchPartialsHedged runs one batched partials round trip, firing a
// second copy at hedgeURL if the primary is still unanswered after the
// node's quantile-based hedge delay. The first success wins and the
// loser's context is cancelled; the hedge is counted in
// sea_hedges_total but not in the partials-sent counter (it is
// deliberate extra fan-out, not part of the message-minimal shape).
//
// The common case — the primary answers before the delay — must cost
// nearly nothing beyond the RPC itself: the primary runs synchronously
// on the caller's goroutine and the hedge is armed as a time.AfterFunc,
// which spawns a goroutine only when the delay actually fires (for a
// p95-quantile delay, 19 RPCs in 20 never do). The overhead gate in E21
// rides on this: a goroutine+timer+select per RPC was measurable against
// the stripped baseline, an armed-but-unfired AfterFunc is not.
func (n *Node) fetchPartialsHedged(url, hedgeURL string, parts []int, wq serve.QueryRequest, dlMS int64, deadline time.Time, sp *trace.Span) ([]PartPartial, int64, error) {
	delay := n.hedgeDelay()
	if hedgeURL == "" || delay <= 0 {
		ps, b, err := n.fetchPartials(context.Background(), url, parts, wq, dlMS, deadline, sp, false)
		n.health.observe(url, err)
		return ps, b, err
	}
	type out struct {
		resp  []PartPartial
		bytes int64
		err   error
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // kills a still-in-flight hedge on every return path
	priCtx, priCancel := context.WithCancel(ctx)
	defer priCancel()
	ch := make(chan out, 1)
	tm := time.AfterFunc(delay, func() {
		n.rec().Hedge()
		ps, b, err := n.fetchPartials(ctx, hedgeURL, parts, wq, dlMS, deadline, sp, true)
		if err == nil {
			priCancel() // the hedge won: yank the still-blocked primary
		}
		ch <- out{resp: ps, bytes: b, err: err}
	})
	ps, b, err := n.fetchPartials(priCtx, url, parts, wq, dlMS, deadline, sp, false)
	hedgeLaunched := !tm.Stop()
	if err == nil {
		// The primary won (or tied). A launched hedge dies with the
		// deferred cancel; its outcome is dropped unobserved (a
		// cancellation says nothing about the hedge peer's health).
		n.health.observe(url, nil)
		return ps, b, nil
	}
	if !hedgeLaunched {
		// The primary failed before the delay: the caller's normal
		// failover handles the next replica — a fast failure needs no
		// hedge.
		n.health.observe(url, err)
		return nil, 0, err
	}
	// The primary's failure may be the winning hedge's own cancellation;
	// only a failure of its own making says anything about its health.
	if !errors.Is(err, context.Canceled) {
		n.health.observe(url, err)
	}
	o := <-ch
	n.health.observe(hedgeURL, o.err)
	if o.err == nil {
		return o.resp, o.bytes, nil
	}
	// The hedge failed, so it never cancelled the primary: err is the
	// primary's own, and the first error wins as before.
	return nil, 0, err
}

// hedgeDelay returns the current hedging delay (0 = hedging off or not
// enough latency samples yet).
func (n *Node) hedgeDelay() time.Duration {
	return time.Duration(n.hedgeNs.Load())
}

// observePartialLat feeds one successful primary partials RPC latency
// into the hedge-delay estimate: every hedgeRecalcEvery samples the
// configured quantile is re-read from the histogram and cached in an
// atomic (the per-RPC cost stays one histogram record + one load).
func (n *Node) observePartialLat(d time.Duration) {
	if n.cfg.HedgeQuantile < 0 {
		return
	}
	n.partialLat.RecordDur(d)
	if c := n.partialLatN.Add(1); c >= hedgeMinSamples && c%hedgeRecalcEvery == 0 {
		q := n.partialLat.Snapshot().Quantile(n.cfg.HedgeQuantile)
		if min := int64(hedgeMinDelay); q < min {
			q = min
		}
		n.hedgeNs.Store(q)
	}
}

const (
	// hedgeMinSamples is how many primary RPC latencies must be
	// observed before hedging arms (an empty histogram's quantile
	// would hedge everything).
	hedgeMinSamples = 32
	// hedgeRecalcEvery bounds how often the quantile is recomputed.
	hedgeRecalcEvery = 32
	// hedgeMinDelay floors the hedge delay so loopback-fast clusters
	// do not hedge the common case.
	hedgeMinDelay = 2 * time.Millisecond
)

// fetchPartials runs one batched partials round trip against a holder,
// returning its per-partition entries and the request+response payload
// bytes. Both JSON buffers come from the shared pool. A non-nil span
// asks the holder for its own span tree and grafts it underneath. The
// propagated deadline bounds the request context; error-status bodies
// are drained so their keep-alive connections are reused.
func (n *Node) fetchPartials(ctx context.Context, url string, parts []int, wq serve.QueryRequest, dlMS int64, deadline time.Time, sp *trace.Span, hedge bool) ([]PartPartial, int64, error) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer jsonBufPool.Put(buf)
	if err := json.NewEncoder(buf).Encode(PartialsRequest{
		Parts: parts, Query: wq, Trace: sp != nil, DeadlineMS: dlMS,
		Epoch: n.epoch(),
	}); err != nil {
		return nil, 0, err
	}
	reqBytes := int64(buf.Len())
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/partials", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	rpcStart := time.Now()
	resp, err := n.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		drainClose(resp.Body)
		return nil, 0, fmt.Errorf("partials from %s: HTTP %d: %w", url, resp.StatusCode, errPeerResponded)
	}
	rb := jsonBufPool.Get().(*bytes.Buffer)
	rb.Reset()
	defer jsonBufPool.Put(rb)
	if _, err := rb.ReadFrom(io.LimitReader(resp.Body, 64<<20)); err != nil {
		return nil, 0, err
	}
	var pr PartialsResponse
	if err := json.Unmarshal(rb.Bytes(), &pr); err != nil {
		return nil, 0, err
	}
	n.noteEpoch(pr.Epoch)
	sp.AttachWire(pr.Spans)
	if !hedge {
		n.partialsSent.Add(1)
		n.observePartialLat(time.Since(rpcStart))
	}
	return pr.Partials, reqBytes + int64(rb.Len()), nil
}

// runBounded runs fn(0..n-1) on at most fanout worker goroutines and
// waits for completion — the bounded replacement for the old
// goroutine-per-partition spawn.
func runBounded(fanout, n int, fn func(i int)) {
	if n == 0 {
		return
	}
	if fanout <= 0 || fanout > n {
		fanout = n
	}
	if fanout == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	work := make(chan int)
	var wg sync.WaitGroup
	wg.Add(fanout)
	for w := 0; w < fanout; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}
