package dist

import (
	"sort"
	"strconv"
)

// DefaultVNodes is the number of virtual nodes each physical node
// contributes to the ring. More vnodes smooth the key distribution;
// 64 keeps the ring small while bounding per-node load skew to a few
// percent at the cluster sizes this repo targets.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over node ids. It partitions an
// arbitrary key space (the cluster uses the canonical query key from
// serve.Key for query placement and "part:<i>" keys for data-partition
// placement) so that adding or removing one node only remaps the keys
// adjacent to its vnodes — the standard scale-out partitioning scheme of
// distributed data systems (Valduriez §4; semadb's cluster layer).
//
// Ring is not safe for concurrent mutation. The cluster treats rings
// as immutable values: a membership change builds a NEW ring from the
// new view and swaps it in atomically (memberState), so concurrent
// readers always see a complete layout. Add/Remove exist for
// construction and for tests that model churn directly.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	nodes  []string    // sorted member ids
}

type ringPoint struct {
	hash uint32
	node string
}

// NewRing builds a ring with the given nodes (vnodes <= 0 takes
// DefaultVNodes).
func NewRing(vnodes int, nodes ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes}
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// Add inserts a node's vnodes into the ring (idempotent).
func (r *Ring) Add(node string) {
	for _, n := range r.nodes {
		if n == node {
			return
		}
	}
	r.nodes = append(r.nodes, node)
	sort.Strings(r.nodes)
	for i := 0; i < r.vnodes; i++ {
		h := fnv32a(node + "#" + strconv.Itoa(i))
		r.points = append(r.points, ringPoint{hash: h, node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes a node's vnodes from the ring. The surviving points
// move to a FRESH slice: filtering in place (points[:0]) would scribble
// over the old backing array while a reader that grabbed the slice
// header moments earlier is still walking it — exactly the stale-client
// misrouting bug this used to cause.
func (r *Ring) Remove(node string) {
	kept := make([]ringPoint, 0, len(r.points))
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	for i, n := range r.nodes {
		if n == node {
			r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
			break
		}
	}
}

// Nodes returns the member ids in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// VNodes returns the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Digest returns a stable fingerprint of the ring's layout. Vnode
// placement is a pure function of the member set and vnode count, so
// hashing those is enough: two nodes agree on key placement iff their
// digests match, which is what the cluster introspection plane
// cross-checks to flag divergent ring views.
func (r *Ring) Digest() string {
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix(strconv.Itoa(r.vnodes))
	for _, n := range r.nodes {
		mix("|")
		mix(n)
	}
	return strconv.FormatUint(h, 16)
}

// Owners returns the n distinct nodes responsible for key, in ring
// order: the primary first, then the failover replicas. n is clamped to
// the member count. Every member sharing one ring computes the same
// owner list for the same key, which is what makes client-side routing,
// node-side forwarding and replica failover agree without coordination.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := fnv32a(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Primary returns the first owner of key ("" on an empty ring).
func (r *Ring) Primary(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// fnv32a is the 32-bit FNV-1a hash with a murmur-style finalizer. Plain
// FNV clusters badly on short similar strings ("n0#1", "n0#2", ...),
// which skews vnode placement; the avalanche mix spreads them uniformly
// around the ring.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}
