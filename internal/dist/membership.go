package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/query"
	"repro/internal/serve"
)

// This file is the elastic-membership plane: a versioned membership
// View (epoch + member list) every node carries, swapped atomically on
// change and stamped into every wire body. A node or client that sees
// a response from a newer epoch refetches the view from the members it
// knows (GET /v1/membership) and re-resolves owners instead of routing
// on a stale ring — the gossip is pull-on-divergence, so a quiet
// cluster exchanges no membership traffic at all.
//
// Epochs only increase. The coordinator of a join/leave (any live
// member that received the request) builds epoch+1, stages the moving
// partitions on their gainers (rebalance.go), then pushes the new view
// to every old and new member; stragglers that miss the push converge
// the first time any stamped RPC reaches them.

// Member is one cluster member in a membership view.
type Member struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// View is a versioned membership: the epoch and the member list
// (sorted by ID). Two nodes with equal epochs have identical views.
type View struct {
	Epoch   int64    `json:"epoch"`
	Members []Member `json:"members"`
}

// clone deep-copies the view (members are value types).
func (v View) clone() View {
	out := View{Epoch: v.Epoch, Members: make([]Member, len(v.Members))}
	copy(out.Members, v.Members)
	return out
}

// normalize sorts the member list by ID so equal views marshal
// identically regardless of construction order.
func (v *View) normalize() {
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i].ID < v.Members[j].ID })
}

// has reports whether id is a member of the view.
func (v View) has(id string) bool {
	for _, m := range v.Members {
		if m.ID == id {
			return true
		}
	}
	return false
}

// ids returns the member ids in view order.
func (v View) ids() []string {
	out := make([]string, len(v.Members))
	for i, m := range v.Members {
		out[i] = m.ID
	}
	return out
}

// memberState is a node's resolved membership: the view plus the ring
// and URL map derived from it. It is immutable once built — readers
// load the whole struct through one atomic pointer, so a view change
// can never be observed half-applied.
type memberState struct {
	view View
	ring *Ring
	urls map[string]string
}

// newMemberState resolves a view into a routable state.
func newMemberState(v View, vnodes int) *memberState {
	urls := make(map[string]string, len(v.Members))
	for _, m := range v.Members {
		urls[m.ID] = m.URL
	}
	return &memberState{view: v, ring: NewRing(vnodes, v.ids()...), urls: urls}
}

// viewFromPeers derives the boot view from a static peer map (epoch 1,
// the pre-elastic config surface).
func viewFromPeers(id string, peers map[string]string) View {
	v := View{Epoch: 1}
	for pid, url := range peers {
		v.Members = append(v.Members, Member{ID: pid, URL: url})
	}
	if len(v.Members) == 0 {
		v.Members = []Member{{ID: id}}
	}
	v.normalize()
	return v
}

// MembershipResponse is the GET /v1/membership body: the node's view
// plus the cluster shape a joiner must adopt to agree on placement
// (the partition count is NOT derivable from a joiner's own config —
// the default scales with the peer count, which differs per member).
type MembershipResponse struct {
	View       View   `json:"view"`
	Partitions int    `json:"partitions"`
	Replicas   int    `json:"replicas"`
	VNodes     int    `json:"vnodes"`
	Node       string `json:"node"`
}

// members returns the node's current membership state.
func (n *Node) members() *memberState { return n.member.Load() }

// epoch returns the node's current membership epoch.
func (n *Node) epoch() int64 { return n.members().view.Epoch }

// noteEpoch reacts to an epoch observed on the wire: anything newer
// than the node's own view kicks a background membership refresh. It
// is called on every stamped request/response a node handles, so it
// must stay one comparison on the common (equal-epoch) path.
func (n *Node) noteEpoch(e int64) {
	if e > n.epoch() {
		n.kickRefresh()
	}
}

// kickRefresh starts one background membership refresh; concurrent
// observations of a newer epoch coalesce into the in-flight one.
func (n *Node) kickRefresh() {
	if !n.refreshing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer n.refreshing.Store(false)
		n.refreshMembership()
	}()
}

// refreshMembership pulls the membership view from every member of the
// current view and adopts the newest. A member that departed in the
// newer view simply fails or answers with the newer view itself; as
// long as one reachable member has converged, this node converges too.
func (n *Node) refreshMembership() {
	ms := n.members()
	var best View
	for _, m := range ms.view.Members {
		if m.ID == n.id || m.URL == "" || !n.health.available(m.URL) {
			continue
		}
		mr, err := fetchMembership(n.hc, m.URL)
		if err != nil {
			continue
		}
		if mr.View.Epoch > best.Epoch {
			best = mr.View
		}
	}
	if best.Epoch > n.epoch() {
		if err := n.applyView(best); err != nil {
			n.logger.Warn("membership refresh apply failed", "epoch", best.Epoch, "err", err)
		}
	}
}

func (n *Node) membershipResponse() MembershipResponse {
	return MembershipResponse{
		View:       n.members().view.clone(),
		Partitions: n.cfg.Partitions,
		Replicas:   n.cfg.Replicas,
		VNodes:     n.cfg.VNodes,
		Node:       n.id,
	}
}

func (n *Node) handleMembershipGet(w http.ResponseWriter, _ *http.Request) {
	serve.WriteJSON(w, http.StatusOK, n.membershipResponse())
}

// handleMembershipPost installs a pushed view when it is newer than the
// node's own (the coordinator's cutover push); either way it answers
// with the node's resulting view, so the push doubles as an exchange.
func (n *Node) handleMembershipPost(w http.ResponseWriter, r *http.Request) {
	var v View
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&v); err != nil {
		serve.WriteError(w, fmt.Errorf("%w: %v", query.ErrBadQuery, err))
		return
	}
	if v.Epoch > n.epoch() {
		if err := n.applyView(v); err != nil {
			serve.WriteError(w, err)
			return
		}
	}
	serve.WriteJSON(w, http.StatusOK, n.membershipResponse())
}

// fetchMembership fetches url's membership view with the given client.
func fetchMembership(hc *http.Client, baseURL string) (MembershipResponse, error) {
	resp, err := hc.Get(baseURL + "/v1/membership")
	if err != nil {
		return MembershipResponse{}, fmt.Errorf("dist: membership from %s: %w", baseURL, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return MembershipResponse{}, fmt.Errorf("dist: membership from %s: HTTP %d: %w",
			baseURL, resp.StatusCode, errPeerResponded)
	}
	var out MembershipResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return MembershipResponse{}, fmt.Errorf("dist: membership from %s: %w", baseURL, err)
	}
	return out, nil
}

// FetchMembership fetches a live member's membership view and cluster
// shape (GET /v1/membership). Joiners bootstrap their Config from it
// (cmd/seaserve -join) and clients use it to re-resolve owners after
// observing a newer epoch.
func FetchMembership(baseURL string, timeout time.Duration) (MembershipResponse, error) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return fetchMembership(&http.Client{Timeout: timeout}, baseURL)
}

// pushView posts a view to a member and returns its resulting epoch.
func (n *Node) pushView(url string, v View) (int64, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	resp, err := n.hc.Post(url+"/v1/membership", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("dist: push view to %s: HTTP %d: %w", url, resp.StatusCode, errPeerResponded)
	}
	var out MembershipResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.View.Epoch, nil
}
