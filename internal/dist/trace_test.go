package dist

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// rowsOracle is a trivial in-memory exact oracle for the race hammer.
type rowsOracle struct{ rows []storage.Row }

func (o rowsOracle) Answer(q query.Query) (query.Result, metrics.Cost, error) {
	return query.EvalRows(q, o.rows), metrics.Cost{RowsRead: int64(len(o.rows))}, nil
}

func (o rowsOracle) DataVersion() int64 { return 1 }

// traceTestCluster boots a 3-node cluster whose agents never finish
// training, so every query takes the exact scatter-gather path.
func traceTestCluster(t *testing.T, cfg Config) *LocalCluster {
	t.Helper()
	agent := core.DefaultConfig(2)
	agent.TrainingQueries = 1 << 30
	cfg.Agent = agent
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	lc, err := StartLocal(3, cfg, workload.StandardRows(3000, 11))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	return lc
}

func postTracedQuery(t *testing.T, url string) QueryResponse {
	t.Helper()
	body, err := json.Marshal(serve.QueryRequest{
		Agg: "count",
		Los: []float64{-100, -100},
		His: []float64{100, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/query?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced query: HTTP %d", resp.StatusCode)
	}
	return qr
}

func TestTracePropagatesAcrossCluster(t *testing.T) {
	lc := traceTestCluster(t, Config{})
	qr := postTracedQuery(t, lc.URL(lc.IDs()[0]))

	if qr.TraceID == "" || qr.Trace == nil {
		t.Fatalf("?trace=1 returned no trace: %+v", qr)
	}
	w := qr.Trace
	// The whole-space exact query touches every partition, so the tree
	// must stitch spans from more than one node...
	nodes := w.Nodes()
	if len(nodes) < 2 {
		t.Fatalf("trace covers nodes %v, want a multi-node tree", nodes)
	}
	// ...while keeping the message-minimal fan-out: at most ONE
	// partial_rpc span per remote holder.
	if got := w.CountNamed("partial_rpc"); got < 1 || got > 2 {
		t.Fatalf("partial_rpc spans = %d, want 1..2 (one per remote holder)", got)
	}
	// The serving tiers and scatter stages all appear in one tree.
	for _, name := range []string{"sched_wait", "fallback", "oracle", "local_scan", "merge"} {
		if w.CountNamed(name) == 0 {
			t.Fatalf("trace has no %q span:\n%+v", name, w)
		}
	}
	// Remote holders tag their spans with their own node id, and their
	// subtrees carry the remote local_scan.
	if w.CountNamed("local_scan") < 2 {
		t.Fatalf("want local_scan spans from entry and remote holders, got %d", w.CountNamed("local_scan"))
	}

	// The answering node's ring serves the same tree back by id.
	resp, err := http.Get(lc.URL(qr.Node) + "/v1/debug/trace/" + qr.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug trace lookup: HTTP %d", resp.StatusCode)
	}
	var stored map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stored); err != nil {
		t.Fatalf("debug trace body not JSON: %v", err)
	}
}

func TestForwardedQueryKeepsTraceFlag(t *testing.T) {
	lc := traceTestCluster(t, Config{})
	// Ask every member: at least one of them is NOT an owner of this
	// key and must forward — the trace flag has to survive the hop.
	for _, id := range lc.IDs() {
		qr := postTracedQuery(t, lc.URL(id))
		if qr.TraceID == "" || qr.Trace == nil {
			t.Fatalf("entry %s: forwarded ?trace=1 lost the trace", id)
		}
		if qr.Trace.Name != "query" {
			t.Fatalf("entry %s: root span = %q", id, qr.Trace.Name)
		}
	}
}

func TestTracedIngestSpans(t *testing.T) {
	lc := traceTestCluster(t, Config{})
	rows := make([]WireRow, 32)
	for i := range rows {
		rows[i] = WireRow{Key: uint64(1000 + i), Vec: []float64{1, 2}}
	}
	body, err := json.Marshal(IngestRequest{Rows: rows})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(lc.URL(lc.IDs()[0])+"/v1/ingest?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced ingest: HTTP %d", resp.StatusCode)
	}
	if ir.AckedRows != len(rows) {
		t.Fatalf("acked %d of %d rows: %+v", ir.AckedRows, len(rows), ir.Parts)
	}
	if len(ir.Spans) != 1 {
		t.Fatalf("traced ingest returned %d span trees, want 1", len(ir.Spans))
	}
	w := &ir.Spans[0]
	if w.Name != "ingest" {
		t.Fatalf("root span = %q", w.Name)
	}
	// Partitions whose primary is elsewhere forward — their forward
	// spans must carry the primary's stitched wal_append/absorb spans.
	if w.CountNamed("absorb") == 0 || w.CountNamed("wal_append") == 0 && w.CountNamed("forward") == 0 {
		t.Fatalf("ingest span tree missing write-path stages:\n%+v", w)
	}
}

func TestClusterMetricsExposition(t *testing.T) {
	lc := traceTestCluster(t, Config{})
	entry := lc.IDs()[0]
	postTracedQuery(t, lc.URL(entry))
	resp, err := http.Get(lc.URL(entry) + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		"# TYPE sea_path_latency_seconds histogram",
		"sea_absorbed_version",
		"sea_wal_segments",
		"sea_probation_quanta",
		"sea_sched_queue_depth",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/v1/metrics missing %q:\n%.2000s", want, out)
		}
	}
}

func TestServeTraceRaceHammer(t *testing.T) {
	// Hammer the pool's traced and untraced paths concurrently with
	// metrics scrapes and trace-ring reads: the -race build must stay
	// clean. (The recorder and tracer are the shared mutable state every
	// request now touches.)
	ag, err := core.NewAgent(rowsOracle{rows: workload.StandardRows(500, 3)}, core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := serve.NewPool([]*core.Agent{ag}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool.EnableCache(256)
	tracer := trace.NewTracer("test", 8)
	pool.EnableTracing(tracer)
	tracer.SetSampleEvery(3)
	tracer.SetSlowThreshold(time.Nanosecond)

	qs := workload.NewQueryStream(workload.NewRNG(42), workload.DefaultRegions(2), query.Count)
	catalog := make([]query.Query, 16)
	for i := range catalog {
		catalog[i] = qs.Next()
	}
	var wg sync.WaitGroup
	const workers = 8
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(int64(w))
			for i := 0; i < 300; i++ {
				q := catalog[rng.Intn(len(catalog))]
				if i%7 == 0 {
					tr := tracer.Force("query")
					_, _ = pool.AnswerTraced(q, tr)
				} else {
					_, _ = pool.Answer(q)
				}
				if i%31 == 0 {
					var sb strings.Builder
					_ = pool.Recorder().WriteRecorder(&sb)
					_ = tracer.RecentIDs()
					_ = tracer.SlowLog()
				}
			}
		}(w)
	}
	wg.Wait()
	if s := pool.Recorder().Snapshot(); s.Queries != workers*300 {
		t.Fatalf("served %d, want %d", s.Queries, workers*300)
	}
}
