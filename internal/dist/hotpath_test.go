package dist

import (
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/storage"
)

// countBox returns a COUNT query covering the whole [0,100]^2 data
// space, so its exact answer is the cluster's total row count.
func countBox() query.Query {
	return query.Query{
		Select:    query.Selection{Los: []float64{-1e6, -1e6}, His: []float64{1e6, 1e6}},
		Aggregate: query.Count,
	}
}

// TestScatterGatherOnePartialRPCPerHolder is the acceptance check of
// the batched fan-out: a cluster-mode exact fallback must issue at most
// ONE partial RPC per remote holder per query — not one per partition —
// and the cost accounting must reflect that shape.
func TestScatterGatherOnePartialRPCPerHolder(t *testing.T) {
	lc, rows := exactCluster(t, 3)
	entry := lc.Node(lc.IDs()[0])
	others := lc.IDs()[1:]

	// The entry node can never need more RPCs than there are remote
	// members to batch to.
	remoteMax := len(others)

	qs := aggStreams(7)
	for round := 0; round < 10; round++ {
		q := qs[round%len(qs)].Next()
		sentBefore := entry.PartialRPCsSent()
		servedBefore := make(map[string]int64, len(others))
		for _, id := range others {
			servedBefore[id] = lc.Node(id).PartialRPCsServed()
		}
		res, cost, err := entry.ScatterGather(q)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := query.EvalRows(q, rows).Value
		if !closeEnough(q.Aggregate, res.Value, want) {
			t.Fatalf("round %d: got %v want %v", round, res.Value, want)
		}
		sent := entry.PartialRPCsSent() - sentBefore
		var served int64
		for _, id := range others {
			delta := lc.Node(id).PartialRPCsServed() - servedBefore[id]
			if delta > 1 {
				t.Fatalf("round %d: holder %s served %d partial RPCs for one query, want <= 1",
					round, id, delta)
			}
			served += delta
		}
		if sent != served {
			t.Fatalf("round %d: sent %d batched RPCs but holders served %d", round, sent, served)
		}
		if int(sent) > remoteMax {
			t.Fatalf("round %d: %d RPCs for %d remote holders", round, sent, remoteMax)
		}
		if cost.Messages != 2*sent {
			t.Fatalf("round %d: cost.Messages=%d, want 2 per RPC round trip (%d)",
				round, cost.Messages, 2*sent)
		}
		if sent > 0 && cost.BytesLAN <= 0 {
			t.Fatalf("round %d: remote RPCs moved no accounted bytes", round)
		}
		if cost.RowsRead != int64(len(rows)) {
			t.Fatalf("round %d: read %d rows, want %d", round, cost.RowsRead, len(rows))
		}
	}
}

// TestScatterGatherFailoverRebatches kills one member and proves the
// batched fan-out re-batches the dead holder's partitions onto the
// surviving replicas: the answer stays exact and error-free.
func TestScatterGatherFailoverRebatches(t *testing.T) {
	lc, rows := exactCluster(t, 3)
	entry := lc.Node(lc.IDs()[0])
	lc.Kill(lc.IDs()[1])

	q := countBox()
	var got query.Result
	var err error
	// The first attempt may spend its error budget discovering the dead
	// peer; the health tracker then quarantines it.
	for attempt := 0; attempt < 3; attempt++ {
		got, _, err = entry.ScatterGather(q)
		if err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("scatter never recovered after kill: %v", err)
	}
	if got.Value != float64(len(rows)) {
		t.Fatalf("failover answer %v, want %d", got.Value, len(rows))
	}
}

// TestIngestInvalidatesCachedAnswers is the staleness acceptance test:
// an ingest-driven DataVersion bump must invalidate cached answers — a
// query repeated after an acked batch sees the new rows, never the
// cached pre-ingest answer. The tail runs queries concurrently with
// ingest so `go test -race` exercises the cache/ingest interleaving.
func TestIngestInvalidatesCachedAnswers(t *testing.T) {
	lc, rows := exactCluster(t, 3)
	client := lc.Client()
	q := countBox()

	a1, err := client.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Value != float64(len(rows)) {
		t.Fatalf("baseline count %v, want %d", a1.Value, len(rows))
	}
	// Repeat: served from the versioned cache (same key, same owner).
	a2, err := client.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Value != a1.Value {
		t.Fatalf("repeat answer %v != %v", a2.Value, a1.Value)
	}
	var hits int64
	for _, id := range lc.IDs() {
		hits += lc.Node(id).Pool().Recorder().Snapshot().CacheHits
	}
	if hits == 0 {
		t.Fatal("repeated identical query never hit the answer cache")
	}

	// Ingest rows inside the selection; the ack means a quorum applied
	// them and bumped their data versions.
	batch := make([]storage.Row, 50)
	for i := range batch {
		batch[i] = storage.Row{Key: uint64(1_000_000 + i), Vec: []float64{50, 50, 1}}
	}
	resp, err := client.Ingest(batch)
	if err != nil {
		t.Fatal(err)
	}
	if resp.AckedRows != len(batch) {
		t.Fatalf("acked %d of %d rows on a healthy cluster", resp.AckedRows, len(batch))
	}

	a3, err := client.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(len(rows) + len(batch)); a3.Value != want {
		t.Fatalf("post-ingest answer %v, want %v (stale cached answer served?)", a3.Value, want)
	}

	// Concurrent readers vs writers: no errors, and once quiesced the
	// cache serves the final truth.
	var wg sync.WaitGroup
	const writers, batches, perBatch = 2, 10, 5
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				rows := make([]storage.Row, perBatch)
				for i := range rows {
					rows[i] = storage.Row{
						Key: uint64(2_000_000 + w*batches*perBatch + b*perBatch + i),
						Vec: []float64{25, 75, 1},
					}
				}
				if _, err := client.Ingest(rows); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := client.Answer(q); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	final, err := client.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(len(rows) + len(batch) + writers*batches*perBatch); final.Value != want {
		t.Fatalf("final count %v, want %v", final.Value, want)
	}
}
