package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/query"
)

// TestNodeStatusSnapshot checks the live /v1/status snapshot: every
// member reports the same ring digest, each held partition carries a
// role and a full owner set, and the runtime section is populated.
func TestNodeStatusSnapshot(t *testing.T) {
	lc, _ := liveCluster(t, 3, t.TempDir())

	var digest string
	for _, id := range lc.IDs() {
		st := lc.Node(id).NodeStatus()
		if st.SchemaVersion != StatusSchemaVersion {
			t.Fatalf("node %s: schema version %d, want %d", id, st.SchemaVersion, StatusSchemaVersion)
		}
		if st.Node != id {
			t.Fatalf("node %s reports id %q", id, st.Node)
		}
		if digest == "" {
			digest = st.Ring.Digest
		} else if st.Ring.Digest != digest {
			t.Fatalf("node %s ring digest %q != %q", id, st.Ring.Digest, digest)
		}
		if len(st.Ring.Members) != 3 {
			t.Fatalf("node %s sees %d members, want 3", id, len(st.Ring.Members))
		}
		if len(st.Partitions) == 0 || st.RowsHeld == 0 {
			t.Fatalf("node %s holds no data: %d partitions, %d rows", id, len(st.Partitions), st.RowsHeld)
		}
		for _, ps := range st.Partitions {
			if ps.Role != "primary" && ps.Role != "replica" {
				t.Fatalf("node %s partition %d: bad role %q", id, ps.Part, ps.Role)
			}
			if len(ps.Owners) != 2 {
				t.Fatalf("node %s partition %d: %d owners, want 2", id, ps.Part, len(ps.Owners))
			}
			if ps.Rows == 0 {
				t.Fatalf("node %s partition %d: zero rows held", id, ps.Part)
			}
		}
		if st.Runtime.Goroutines == 0 || st.Runtime.HeapAlloc == 0 {
			t.Fatalf("node %s: runtime section not sampled: %+v", id, st.Runtime)
		}
	}
}

// TestClusterReportFindings checks the aggregator's verdicts: a fully
// alive cluster yields a healthy report with every member reachable,
// and killing a member yields a critical "unreachable" finding.
func TestClusterReportFindings(t *testing.T) {
	lc, _ := liveCluster(t, 3, t.TempDir())
	coord := lc.Node(lc.IDs()[0])

	rep := coord.ClusterReport()
	if !rep.Healthy || len(rep.Findings) != 0 {
		t.Fatalf("alive cluster reported unhealthy: %+v", rep.Findings)
	}
	if len(rep.Nodes) != 3 {
		t.Fatalf("report covers %d nodes, want 3", len(rep.Nodes))
	}
	for _, nr := range rep.Nodes {
		if !nr.Reachable || nr.Status == nil {
			t.Fatalf("member %s not stitched into healthy report: %+v", nr.ID, nr)
		}
	}

	victim := lc.IDs()[2]
	lc.Kill(victim)
	rep = coord.ClusterReport()
	if rep.Healthy {
		t.Fatal("report stayed healthy with a dead member")
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == "unreachable" && f.Node == victim && f.Severity == "critical" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no critical unreachable finding for %s: %+v", victim, rep.Findings)
	}
}

// dataKeyedPaths are JSON object paths whose keys are data (tenant
// class names), not schema; the walker folds their children under "*".
var dataKeyedPaths = map[string]bool{"sched.classes": true}

// collectJSONKeys walks decoded JSON and records every object key as a
// dotted path; array elements contribute under "parent[]".
func collectJSONKeys(prefix string, v any, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			name := k
			if dataKeyedPaths[prefix] {
				name = "*"
			}
			p := name
			if prefix != "" {
				p = prefix + "." + name
			}
			out[p] = true
			collectJSONKeys(p, val, out)
		}
	case []any:
		if len(x) > 0 {
			collectJSONKeys(prefix+"[]", x[0], out)
		}
	}
}

func assertGoldenKeys(t *testing.T, label string, v any, want []string) {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var decoded any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	gotSet := map[string]bool{}
	collectJSONKeys("", decoded, gotSet)
	got := make([]string, 0, len(gotSet))
	for k := range gotSet {
		got = append(got, k)
	}
	sort.Strings(got)
	wantSet := map[string]bool{}
	for _, k := range want {
		wantSet[k] = true
	}
	for _, k := range want {
		if !gotSet[k] {
			t.Errorf("%s: key %q gone — a rename/removal must bump StatusSchemaVersion and this golden list", label, k)
		}
	}
	for _, k := range got {
		if !wantSet[k] {
			t.Errorf("%s: new key %q — add it to the golden list (additions are compatible, no version bump)", label, k)
		}
	}
}

// TestStatusGoldenKeys pins the wire shape of /v1/status and
// /v1/debug/cluster. It marshals fully-populated structs (so every
// omitempty field emits) and compares the exact key paths against a
// golden list: dashboards depend on these names, so a rename or
// removal must fail here and bump StatusSchemaVersion.
func TestStatusGoldenKeys(t *testing.T) {
	st := NodeStatus{
		SchemaVersion: StatusSchemaVersion,
		Node:          "n0",
		UptimeMS:      1,
		Ring: RingStatus{
			Digest: "d", Epoch: 1, VNodes: 64,
			Members: []MemberStatus{{ID: "n0", URL: "http://x", Self: true, Alive: true}},
		},
		Partitions: []PartitionStatus{{
			Part: 0, Role: "primary", Owners: []string{"n0", "n1"},
			Rows: 1, LastSeq: 1, WALSegments: 1,
		}},
		RowsHeld: 1, DataVersion: 1, AbsorbedVersion: 1, IngestEpoch: 1,
		Drift: DriftStatus{ProbationQuanta: 1, Invalidations: 1, Rebuilds: 1},
		Cache: CacheStatus{Enabled: true, Size: 1, Hits: 1, HitRate: 0.5},
		Sched: SchedStatus{
			QueueDepth: 1,
			Classes: map[string]metrics.TenantSnap{
				"gold": {Queries: 1, Rejected: 1, Inflight: 1, P50: 1, P99: 1},
			},
		},
		Audit: AuditStatus{Samples: 1, MAPE: 0.1},
		SLO:   []metrics.SLOClassState{{Class: "gold", FastBurn: 1, SlowBurn: 1, State: "ok"}},
		AntiEntropy: AntiEntropyStatus{
			Enabled: true, Ticks: 1, Checked: 1, Divergent: 1, Repairs: 1,
		},
		Rebalance: RebalanceStatus{
			Epoch: 1, Staged: 1, Retired: 1, MovedParts: 1, LastChangeMS: 1,
		},
		Runtime: obs.RuntimeSnap{
			Goroutines: 1, HeapAlloc: 1, HeapSys: 1, GCCycles: 1,
			GCPauseP50: 1, GCPauseP99: 1, GCPauseMax: 1,
		},
		Flight: &flight.Status{
			Series: 1, Ticks: 1, DroppedSamples: 1, Anomalies: 1,
			Triggers: 1, SuppressedTrigger: 1, SpoolBundles: 1, SpoolBytes: 1,
			LastTrigger: "anomaly: spike", LastTriggerUnixMs: 1,
		},
	}
	assertGoldenKeys(t, "NodeStatus", st, []string{
		"absorbed_version",
		"antientropy", "antientropy.checked", "antientropy.divergent",
		"antientropy.enabled", "antientropy.repairs", "antientropy.ticks",
		"audit", "audit.mape", "audit.samples",
		"cache", "cache.enabled", "cache.hit_rate", "cache.hits", "cache.size",
		"data_version",
		"drift", "drift.invalidations", "drift.probation_quanta", "drift.rebuilds",
		"flight", "flight.anomalies", "flight.dropped_samples",
		"flight.last_trigger", "flight.last_trigger_unix_ms",
		"flight.series", "flight.spool_bundles", "flight.spool_bytes",
		"flight.suppressed_triggers", "flight.ticks", "flight.triggers",
		"ingest_epoch",
		"node",
		"partitions",
		"partitions[].last_seq", "partitions[].owners", "partitions[].part",
		"partitions[].role", "partitions[].rows", "partitions[].wal_segments",
		"resilience", "resilience.chaos_enabled", "resilience.degraded_answers",
		"resilience.hedges", "resilience.rpc_retries", "resilience.worst_breaker",
		"rebalance", "rebalance.epoch", "rebalance.last_change_ms",
		"rebalance.moved_parts", "rebalance.retired", "rebalance.staged",
		"ring", "ring.digest", "ring.epoch", "ring.members",
		"ring.members[].alive", "ring.members[].id", "ring.members[].self", "ring.members[].url",
		"ring.vnodes",
		"rows_held",
		"runtime", "runtime.gc_cycles", "runtime.gc_pause_max_ns",
		"runtime.gc_pause_p50_ns", "runtime.gc_pause_p99_ns",
		"runtime.goroutines", "runtime.heap_alloc_bytes", "runtime.heap_sys_bytes",
		"sched", "sched.classes",
		"sched.classes.*", "sched.classes.*.inflight", "sched.classes.*.p50_ns",
		"sched.classes.*.p99_ns", "sched.classes.*.queries", "sched.classes.*.rejected",
		"sched.queue_depth",
		"schema_version",
		"slo", "slo[].class", "slo[].fast_burn", "slo[].slow_burn", "slo[].state",
		"uptime_ms",
	})

	// NodeReport.Status nests a full NodeStatus (covered above); keep it
	// nil here so the report golden stays about the report's own shape.
	rep := ClusterReport{
		SchemaVersion: StatusSchemaVersion,
		Coordinator:   "n0",
		Healthy:       false,
		Nodes:         []NodeReport{{ID: "n1", URL: "http://x", Reachable: false, Error: "down"}},
		Findings: []Finding{{
			Severity: "warn", Kind: "replication_lag", Node: "n1",
			Part: 1, Lag: 2, Detail: "d",
		}},
		TookMS: 1,
	}
	assertGoldenKeys(t, "ClusterReport", rep, []string{
		"coordinator",
		"findings",
		"findings[].detail", "findings[].kind", "findings[].lag",
		"findings[].node", "findings[].part", "findings[].severity",
		"healthy",
		"nodes",
		"nodes[].error", "nodes[].id", "nodes[].reachable", "nodes[].url",
		"schema_version",
		"took_ms",
	})
}

// TestStatusScrapeWhileServingHammer scrapes /v1/status,
// /v1/debug/cluster and /v1/metrics from every member while queries
// and ingest batches are in flight — the introspection plane reads
// live scheduler, WAL and replication state, so this is the test the
// race detector cares about.
func TestStatusScrapeWhileServingHammer(t *testing.T) {
	lc, _ := liveCluster(t, 3, t.TempDir())
	client := lc.Client()
	urls := make([]string, 0, 3)
	for _, id := range lc.IDs() {
		urls = append(urls, lc.URL(id))
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	fail := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				if _, err := client.Answer(wholeSpace(query.Sum, 2)); err != nil {
					fail(fmt.Errorf("query: %w", err))
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < 16; b++ {
			if _, err := client.Ingest(ingestRows(25, 5_000_000+uint64(b*25))); err != nil {
				fail(fmt.Errorf("ingest: %w", err))
				return
			}
		}
	}()

	paths := []string{"/v1/status", "/v1/debug/cluster", "/v1/metrics"}
	for s := range paths {
		wg.Add(1)
		go func(path string, s int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				url := urls[(s+i)%len(urls)] + path
				resp, err := http.Get(url)
				if err != nil {
					fail(fmt.Errorf("GET %s: %w", url, err))
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					fail(fmt.Errorf("GET %s: %w", url, err))
					return
				}
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode))
					return
				}
				switch path {
				case "/v1/status":
					var st NodeStatus
					if err := json.Unmarshal(body, &st); err != nil || st.SchemaVersion != StatusSchemaVersion {
						fail(fmt.Errorf("GET %s: bad status body (%v)", url, err))
						return
					}
				case "/v1/debug/cluster":
					var rep ClusterReport
					if err := json.Unmarshal(body, &rep); err != nil || rep.Coordinator == "" {
						fail(fmt.Errorf("GET %s: bad cluster report (%v)", url, err))
						return
					}
				default:
					if !strings.Contains(string(body), "sea_") {
						fail(fmt.Errorf("GET %s: no sea_ metrics in exposition", url))
						return
					}
				}
			}
		}(paths[s], s)
	}

	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	rep := lc.Node(lc.IDs()[0]).ClusterReport()
	if !rep.Healthy {
		t.Fatalf("cluster unhealthy after hammer: %+v", rep.Findings)
	}
}
