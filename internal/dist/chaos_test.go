package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/serve"
)

// postJSON posts v to url and returns the status code and decoded body.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

// TestBreakerLifecycle walks one breaker through closed -> open ->
// half-open -> closed, including the probe-failure re-open and the
// single-probe admission rule.
func TestBreakerLifecycle(t *testing.T) {
	cfg := breakerConfig{minVolume: 4, failureRate: 0.5, openFor: time.Second}
	b := newBreaker(cfg)
	now := time.Now()

	for i := 0; i < 4; i++ {
		if !b.allow(now) {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.failure(now)
	}
	if got := b.snapshot(); got != breakerOpen {
		t.Fatalf("after %d failures state = %s, want open", 4, breakerStateName(got))
	}
	if b.allow(now) {
		t.Fatal("open breaker admitted a call before openFor elapsed")
	}

	probeAt := now.Add(cfg.openFor + time.Millisecond)
	if !b.allow(probeAt) {
		t.Fatal("breaker did not admit the half-open probe after openFor")
	}
	if got := b.snapshot(); got != breakerHalfOpen {
		t.Fatalf("state = %s, want half-open", breakerStateName(got))
	}
	if b.allow(probeAt) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.failure(probeAt)
	if got := b.snapshot(); got != breakerOpen {
		t.Fatalf("probe failure left state %s, want open", breakerStateName(got))
	}

	probe2 := probeAt.Add(cfg.openFor + time.Millisecond)
	if !b.allow(probe2) {
		t.Fatal("re-opened breaker did not admit a second probe")
	}
	b.success(probe2)
	if got := b.snapshot(); got != breakerClosed {
		t.Fatalf("probe success left state %s, want closed", breakerStateName(got))
	}
	if !b.allow(probe2) {
		t.Fatal("closed breaker rejected a call after recovery")
	}
}

// fakeTimeout satisfies net.Error with Timeout() == true: the shape of
// a blackholed or wedged peer's failure as seen through http.Client.
type fakeTimeout struct{}

func (fakeTimeout) Error() string   { return "fake: i/o timeout" }
func (fakeTimeout) Timeout() bool   { return true }
func (fakeTimeout) Temporary() bool { return true }

// TestBreakerVetoesAlivePeer: the breaker trips on unreachability —
// timeouts, where every attempt costs the full RPC timeout — and vetoes
// the peer in health.available. HTTP error statuses feed neither the
// quarantine (the peer answered, it is alive) nor the breaker (the
// retry layer masks them at per-request cost), so a 500-bursting peer
// stays admitted.
func TestBreakerVetoesAlivePeer(t *testing.T) {
	h := newHealth(time.Hour, time.Second,
		breakerConfig{minVolume: 4, failureRate: 0.5, openFor: time.Hour})
	url := "http://127.0.0.1:1"
	for i := 0; i < 8; i++ {
		h.observe(url, fmt.Errorf("%w: HTTP 500", errPeerResponded))
	}
	if !h.available(url) {
		t.Fatal("peer answering with error statuses was vetoed: 500s must not trip the breaker")
	}
	for i := 0; i < 4; i++ {
		h.observe(url, fakeTimeout{})
	}
	if h.available(url) {
		t.Fatal("peer timing out 100% of calls still admitted by available()")
	}
	if got := h.worstBreaker(); got != breakerOpen {
		t.Fatalf("worstBreaker = %d, want open", got)
	}
	states := h.breakerStates()
	if states[url] != "open" {
		t.Fatalf("breakerStates[%s] = %q, want open", url, states[url])
	}
}

// TestScatterDegradesWhenHoldersGone: with replication 1, killing a
// member makes its partitions unreachable; the exact path must then
// return an honest degraded answer over the covered partitions instead
// of failing — and must fail when NoDegrade opts out.
func TestScatterDegradesWhenHoldersGone(t *testing.T) {
	agentCfg := core.DefaultConfig(2)
	agentCfg.TrainingQueries = 1 << 30 // never predict: every answer is exact
	rows := testRows(2_000, 11)
	lc, err := StartLocal(2, Config{
		Agent:       agentCfg,
		Replicas:    1,
		RetryBudget: -1, // no retries: a gone holder is gone, fail over fast
		AnswerCache: -1, // the post-kill query must recompute, not hit cache
		Timeout:     500 * time.Millisecond,
	}, rows)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)

	n0 := lc.Node("n0")
	q := aggStreams(7)[0].Next() // COUNT

	// Healthy cluster: full coverage, not degraded.
	ans, err := n0.Answer("", q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Degraded || ans.Coverage != 0 {
		t.Fatalf("healthy answer flagged degraded (coverage %v)", ans.Coverage)
	}

	lc.Kill("n1")
	ans, err = n0.Answer("", q)
	if err != nil {
		t.Fatalf("scatter with dead holders should degrade, got error: %v", err)
	}
	if !ans.Degraded {
		t.Fatal("answer with unreachable partitions not flagged degraded")
	}
	if ans.Coverage <= 0 || ans.Coverage >= 1 {
		t.Fatalf("degraded coverage = %v, want in (0,1)", ans.Coverage)
	}
	if got := n0.Pool().Recorder().Snapshot().DegradedAnswers; got == 0 {
		t.Fatal("degraded_answers counter not incremented")
	}
	st := n0.NodeStatus()
	if st.Resilience.DegradedAnswers == 0 {
		t.Fatal("resilience status missing degraded answers")
	}
}

// TestScatterNoDegradeFailsHard: the NoDegrade opt-out restores the old
// fail-the-query behaviour.
func TestScatterNoDegradeFailsHard(t *testing.T) {
	agentCfg := core.DefaultConfig(2)
	agentCfg.TrainingQueries = 1 << 30
	rows := testRows(2_000, 11)
	lc, err := StartLocal(2, Config{
		Agent:       agentCfg,
		Replicas:    1,
		RetryBudget: -1,
		NoDegrade:   true,
		Timeout:     500 * time.Millisecond,
	}, rows)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	lc.Kill("n1")
	if _, err := lc.Node("n0").Answer("", aggStreams(7)[0].Next()); err == nil {
		t.Fatal("NoDegrade cluster answered despite unreachable partitions")
	}
}

// TestDeadlineRefusedServerSide: every RPC handler refuses a
// dead-on-arrival propagated deadline with HTTP 504 before doing work.
func TestDeadlineRefusedServerSide(t *testing.T) {
	agentCfg := core.DefaultConfig(2)
	agentCfg.TrainingQueries = 1 << 30
	lc, err := StartLocal(1, Config{Agent: agentCfg}, testRows(500, 3))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	base := lc.URL("n0")
	dead := time.Now().Add(-time.Second).UnixMilli()

	wq := queryToWire(aggStreams(7)[0].Next(), "")
	wq.DeadlineMS = dead
	if code := postJSON(t, base+"/v1/query", wq, nil); code != http.StatusGatewayTimeout {
		t.Fatalf("/v1/query DOA deadline: HTTP %d, want 504", code)
	}
	if code := postJSON(t, base+"/v1/partials", PartialsRequest{
		Parts: []int{0}, Query: queryToWire(aggStreams(7)[0].Next(), ""), DeadlineMS: dead,
	}, nil); code != http.StatusGatewayTimeout {
		t.Fatalf("/v1/partials DOA deadline: HTTP %d, want 504", code)
	}
	if code := postJSON(t, base+"/v1/ingest", IngestRequest{
		Rows: []WireRow{{Key: 1, Vec: []float64{1, 2, 3}}}, DeadlineMS: dead,
	}, nil); code != http.StatusGatewayTimeout {
		t.Fatalf("/v1/ingest DOA deadline: HTTP %d, want 504", code)
	}

	// A live deadline sails through.
	wq.DeadlineMS = time.Now().Add(10 * time.Second).UnixMilli()
	if code := postJSON(t, base+"/v1/query", wq, nil); code != http.StatusOK {
		t.Fatalf("/v1/query live deadline: HTTP %d, want 200", code)
	}
}

// TestHedgeFiresOnceAndCancelsLoser pins the hedging contract: a slow
// primary triggers exactly one hedge RPC, the hedge's answer wins, the
// primary's in-flight request is cancelled, and the hedge never counts
// toward the message-minimal partials-sent counter.
func TestHedgeFiresOnceAndCancelsLoser(t *testing.T) {
	agentCfg := core.DefaultConfig(2)
	agentCfg.TrainingQueries = 1 << 30
	lc, err := StartLocal(1, Config{Agent: agentCfg}, testRows(200, 3))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	n0 := lc.Node("n0")

	partials := PartialsResponse{Node: "remote", Partials: []PartPartial{
		{Part: 0, Partial: query.ZeroPartial(), Rows: 1},
	}}
	slowCanceled := make(chan struct{}, 1)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the server only notices a client
		// disconnect (and fires r.Context) once the request body has
		// been consumed — which every real handler does by decoding.
		_, _ = io.ReadAll(r.Body)
		select {
		case <-r.Context().Done():
			slowCanceled <- struct{}{}
			return
		case <-time.After(5 * time.Second):
		}
		serve.WriteJSON(w, http.StatusOK, partials)
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		serve.WriteJSON(w, http.StatusOK, partials)
	}))
	defer fast.Close()

	n0.hedgeNs.Store(int64(5 * time.Millisecond))
	sentBefore := n0.PartialRPCsSent()
	resp, _, err := n0.fetchPartialsHedged(
		slow.URL, fast.URL, []int{0}, queryToWire(aggStreams(7)[0].Next(), ""),
		0, time.Time{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 1 || resp[0].Part != 0 {
		t.Fatalf("unexpected hedged response: %+v", resp)
	}
	if got := n0.Pool().Recorder().Snapshot().Hedges; got != 1 {
		t.Fatalf("hedges counter = %d, want exactly 1", got)
	}
	if got := n0.PartialRPCsSent(); got != sentBefore {
		t.Fatalf("hedge RPC incremented partials-sent (%d -> %d)", sentBefore, got)
	}
	select {
	case <-slowCanceled:
	case <-time.After(2 * time.Second):
		t.Fatal("losing primary request was not cancelled")
	}
}

// TestIngestIdempotentReplay: re-delivering a batch under the same
// idempotency key replays the stored outcome instead of re-applying the
// rows — the client-retry double-ingest guard.
func TestIngestIdempotentReplay(t *testing.T) {
	agentCfg := core.DefaultConfig(2)
	agentCfg.TrainingQueries = 1 << 30
	lc, err := StartLocal(1, Config{Agent: agentCfg}, testRows(100, 3))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	n0 := lc.Node("n0")
	base := lc.URL("n0")

	req := IngestRequest{
		Rows:    []WireRow{{Key: 42, Vec: []float64{1, 2, 3}}, {Key: 43, Vec: []float64{4, 5, 6}}},
		IdemKey: "batch-1",
	}
	var first IngestResponse
	if code := postJSON(t, base+"/v1/ingest", req, &first); code != http.StatusOK {
		t.Fatalf("first ingest: HTTP %d", code)
	}
	if first.AckedRows != 2 {
		t.Fatalf("first ingest acked %d rows, want 2", first.AckedRows)
	}
	rowsAfterFirst := n0.NodeStatus().RowsHeld

	var second IngestResponse
	if code := postJSON(t, base+"/v1/ingest", req, &second); code != http.StatusOK {
		t.Fatalf("retried ingest: HTTP %d", code)
	}
	if second.AckedRows != 2 {
		t.Fatalf("replayed ingest acked %d rows, want 2", second.AckedRows)
	}
	if got := n0.NodeStatus().RowsHeld; got != rowsAfterFirst {
		t.Fatalf("idempotent retry re-applied rows: %d -> %d", rowsAfterFirst, got)
	}
	for i := range first.Parts {
		if first.Parts[i].Seq != second.Parts[i].Seq {
			t.Fatalf("replayed outcome differs: seq %d vs %d",
				first.Parts[i].Seq, second.Parts[i].Seq)
		}
	}

	// A distinct key is a distinct batch.
	req.IdemKey = "batch-2"
	if code := postJSON(t, base+"/v1/ingest", req, nil); code != http.StatusOK {
		t.Fatal("third ingest failed")
	}
	if got := n0.NodeStatus().RowsHeld; got != rowsAfterFirst+2 {
		t.Fatalf("new key did not apply: rows %d, want %d", got, rowsAfterFirst+2)
	}
}

// TestChaosEndpointAndMaskedErrors arms injected faults through the
// debug endpoint and asserts the resilience layer masks them: every
// client query under a 30% injected error rate still succeeds with a
// full-coverage answer, and the status plane reports the armed chaos.
func TestChaosEndpointAndMaskedErrors(t *testing.T) {
	lc, _ := exactCluster(t, 3)
	rules := []chaos.Rule{{Endpoint: "/v1/partials", ErrorRate: 0.3}}
	for _, id := range lc.IDs() {
		var st chaosState
		code := postJSON(t, lc.URL(id)+"/v1/debug/chaos",
			chaosState{Enabled: true, Rules: rules}, &st)
		if code != http.StatusOK || !st.Enabled {
			t.Fatalf("arming chaos on %s: HTTP %d enabled=%v", id, code, st.Enabled)
		}
	}
	client := lc.Client()
	qs := aggStreams(900)[0]
	for i := 0; i < 25; i++ {
		ans, err := client.Answer(qs.Next())
		if err != nil {
			t.Fatalf("query %d under 30%% injected errors failed: %v", i, err)
		}
		if ans.Degraded {
			t.Fatalf("query %d degraded despite live replicas", i)
		}
	}
	// The faults really fired (otherwise this test proves nothing).
	var injected int64
	for _, id := range lc.IDs() {
		injected += lc.Chaos(id).Stats().Errored
	}
	if injected == 0 {
		t.Fatal("no faults injected at 30% error rate over 25 scattered queries")
	}
	st := lc.Node("n0").NodeStatus()
	if !st.Resilience.ChaosEnabled {
		t.Fatal("status plane does not report armed chaos")
	}
	// Disarm and verify.
	var cleared chaosState
	if code := postJSON(t, lc.URL("n0")+"/v1/debug/chaos",
		chaosState{Enabled: false}, &cleared); code != http.StatusOK || cleared.Enabled {
		t.Fatal("clearing chaos failed")
	}
}
