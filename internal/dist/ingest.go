package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"repro/internal/ingest"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/internal/trace"
)

// parseHops decodes the ingest forward-hop header. Empty means an
// entry-point request (0 hops). A non-numeric value — e.g. a node id
// set by a pre-elastic peer — maps to the terminal hop count, which
// preserves the old "forwarded requests never hop again" behaviour.
func parseHops(h string) int {
	if h == "" {
		return 0
	}
	v, err := strconv.Atoi(h)
	if err != nil || v < 0 {
		return maxIngestHops
	}
	return v
}

// This file is the cluster's replicated write path (the live data
// plane):
//
//	POST /v1/ingest     client-facing row batches; rows are routed to
//	                    their partitions by key hash, each partition
//	                    batch is handled by (or forwarded to) the
//	                    partition's primary and acknowledged at the
//	                    configured write quorum
//	POST /v1/replicate  primary-to-replica sequenced batch shipping
//	POST /v1/walfetch   log-tail fetch for recovering replicas
//
// Sequencing: the first ring owner of a partition is its primary and
// assigns a per-partition monotonically increasing batch sequence.
// Replicas apply batches strictly in order (a gap is rejected, not
// buffered), so every holder's partition content is a prefix of the
// same log — which is what makes a restarted replica, after WAL replay
// plus log-tail catch-up, answer bit-identically to one that never
// died. Durability comes from the per-partition WAL (internal/ingest):
// with the default fsync policy a batch is on stable storage at every
// acking owner before the client sees the ack.

// partitionForKey routes an ingested row to its data partition with the
// row-placement hash shared with storage.Table, so sequential keys
// spread uniformly.
func (n *Node) partitionForKey(key uint64) int {
	return int(storage.MixKey(key) % uint64(n.cfg.Partitions))
}

// partLock returns partition p's ingest mutex (nil when this node does
// not own p).
func (n *Node) partLock(p int) *sync.Mutex {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.partMu[p]
}

// wal returns partition p's write-ahead log (nil without DataDir).
func (n *Node) wal(p int) *ingest.Log {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.wals[p]
}

// applyBatch makes one sequenced partition batch visible: WAL append
// first (durability before visibility; skipped during replay, which
// reads from the WAL), then the in-memory partition, the node data
// version, and the agents' incremental-maintenance state. Callers
// serialise per partition via partLock; replay runs before serving.
// A non-nil parent span gets wal_append/absorb children (traced ingest).
func (n *Node) applyBatch(p int, seq uint64, rows []storage.Row, writeWAL bool, sp *trace.Span) error {
	if writeWAL {
		wsp := sp.Child("wal_append")
		if l := n.wal(p); l != nil {
			if err := l.Append(seq, rows); err != nil {
				return fmt.Errorf("dist: partition %d: %w", p, err)
			}
		}
		wsp.End()
	}
	n.mu.Lock()
	if _, ok := n.parts[p]; !ok {
		n.mu.Unlock()
		return fmt.Errorf("dist: node %s does not hold partition %d", n.id, p)
	}
	n.parts[p] = append(n.parts[p], rows...)
	if cs, ok := n.cols[p]; ok {
		cs.Append(rows...)
	}
	n.rowsHeld += int64(len(rows))
	n.lastSeq[p] = seq
	n.version++
	ver := n.version
	n.mu.Unlock()

	asp := sp.Child("absorb")
	vecs := make([][]float64, len(rows))
	for i, r := range rows {
		vecs[i] = r.Vec
	}
	for _, ag := range n.pool.Agents() {
		res := ag.AbsorbRows(ver, vecs)
		n.pool.Recorder().DriftInvalidate(res.InvalidatedQuanta)
	}
	// Only now — with the agents' models caught up — may answer-cache
	// entries be stamped with this version.
	n.publishAbsorbed(ver)
	n.pool.Recorder().IngestBatch(len(rows))
	asp.End()
	asp.SetAttrInt("rows", int64(len(rows)))
	return nil
}

// idemCacheCap bounds the primary-side ingest idempotency cache: FIFO
// over (idem key, partition) outcomes. 4096 entries comfortably covers
// a client's retry window; anything older has long been acked or given
// up on.
const idemCacheCap = 4096

// idemGet returns the stored outcome of (key, part) when this primary
// already applied that batch under the same idempotency key.
func (n *Node) idemGet(key string, p int) (PartIngestResult, bool) {
	if key == "" {
		return PartIngestResult{}, false
	}
	k := fmt.Sprintf("%s/%d", key, p)
	n.idemMu.Lock()
	defer n.idemMu.Unlock()
	pr, ok := n.idem[k]
	return pr, ok
}

// idemPut remembers an applied batch's outcome for replay (bounded
// FIFO eviction).
func (n *Node) idemPut(key string, p int, pr PartIngestResult) {
	if key == "" {
		return
	}
	k := fmt.Sprintf("%s/%d", key, p)
	n.idemMu.Lock()
	defer n.idemMu.Unlock()
	if _, dup := n.idem[k]; !dup {
		n.idemOrder = append(n.idemOrder, k)
		if len(n.idemOrder) > idemCacheCap {
			delete(n.idem, n.idemOrder[0])
			n.idemOrder = n.idemOrder[1:]
		}
	}
	n.idem[k] = pr
}

// writeQuorum returns the ack threshold for a partition with the given
// owner count.
func (n *Node) writeQuorum(owners int) int {
	q := n.cfg.WriteQuorum
	if q > owners {
		q = owners
	}
	if q < 1 {
		q = 1
	}
	return q
}

func (n *Node) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !n.ingestGate() {
		serve.WriteJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": errNodeClosing.Error()})
		return
	}
	defer n.closeDone()
	var req IngestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		serve.WriteError(w, fmt.Errorf("%w: %v", query.ErrBadQuery, err))
		return
	}
	if len(req.Rows) == 0 {
		serve.WriteError(w, fmt.Errorf("%w: ingest batch needs rows", query.ErrBadQuery))
		return
	}
	// Refuse dead-on-arrival batches: the client stopped waiting, and an
	// applied-but-unacked write is worse than a refused one.
	if _, err := checkDeadline(req.DeadlineMS); err != nil {
		serve.WriteError(w, err)
		return
	}
	for i, row := range req.Rows {
		if len(row.Vec) == 0 {
			serve.WriteError(w, fmt.Errorf("%w: ingest row %d has an empty vector", query.ErrBadQuery, i))
			return
		}
	}
	groups := make(map[int][]storage.Row)
	for _, row := range req.Rows {
		p := n.partitionForKey(row.Key)
		groups[p] = append(groups[p], storage.Row{Key: row.Key, Vec: row.Vec})
	}
	parts := make([]int, 0, len(groups))
	for p := range groups {
		parts = append(parts, p)
	}
	sort.Ints(parts)

	hops := parseHops(r.Header.Get(forwardHeader))
	ms := n.members()
	// ?trace=1 (or a forwarded request's Trace flag) records the write
	// path as a span tree: wal_append/absorb per applied partition,
	// replicate fan-out, and the forwarded primaries' own trees
	// stitched under the forward spans.
	var root *trace.Span
	if req.Trace || serve.TraceRequested(r) {
		root = trace.NewSpan("ingest", n.id)
	}
	resp := IngestResponse{Node: n.id}
	for _, p := range parts {
		rows := groups[p]
		owners := ms.ring.Owners(partKey(p), n.cfg.Replicas)
		var pr PartIngestResult
		psp := root.Child("part")
		switch {
		case len(owners) > 0 && owners[0] == n.id:
			pr = n.primaryIngest(p, rows, req.IdemKey, hops, psp)
		case hops >= maxIngestHops:
			// Anti-bounce: the hop budget is spent. A persisting ring
			// disagreement must surface as an error, not bounce again —
			// and never as a silent non-primary apply, which would fork
			// the partition's sequence. (One re-forward hop IS allowed,
			// so a request that raced a membership change still lands.)
			pr = PartIngestResult{Part: p, Rows: len(rows),
				Error: fmt.Sprintf("dist: node %s is not the primary of partition %d", n.id, p)}
		default:
			pr = n.forwardIngest(owners, p, rows, req.IdemKey, hops, psp)
			// The batch changed data this node holds no replica of, so
			// its own version counter stays put — advance the ingest
			// epoch instead so cached cluster-wide answers expire.
			n.ingestEpoch.Add(1)
		}
		psp.End()
		psp.SetAttrInt("part", int64(p))
		psp.SetAttrInt("rows", int64(len(rows)))
		if pr.Acked {
			resp.AckedRows += pr.Rows
		} else {
			resp.FailedRows += pr.Rows
		}
		resp.Parts = append(resp.Parts, pr)
	}
	resp.Version = n.DataVersion()
	resp.Epoch = ms.view.Epoch
	if root != nil {
		root.End()
		resp.Spans = []trace.WireSpan{root.Wire()}
	}
	serve.WriteJSON(w, http.StatusOK, resp)
}

// primaryIngest sequences one partition batch, applies it locally and
// replicates it to the other ring owners, acking at the write quorum.
// The local apply happens first: an unacked batch may therefore still
// be present on a minority of owners (standard quorum semantics — the
// caller must treat unacked as lost-or-present). A batch whose
// idempotency key this primary already applied replays the stored
// outcome instead of re-applying the rows, so a client retrying a
// broken connection cannot double-ingest.
//
// Primaryship is re-resolved UNDER the partition lock: a view change
// can move it while the request waits, and sequencing a batch on the
// old primary after cutover would fork the partition's log. A batch
// that lost the race re-forwards (with the lock RELEASED first — the
// new primary's cutover sync may be fetching our WAL tail, which needs
// this very lock).
func (n *Node) primaryIngest(p int, rows []storage.Row, idemKey string, hops int, sp *trace.Span) PartIngestResult {
	mu := n.partLock(p)
	if mu == nil {
		// Routed here as primary, but the partition is gone — a view
		// change retired it between the routing decision and this call.
		// Re-resolve under the current membership and forward to the
		// node that owns it now instead of failing the batch.
		owners := n.members().ring.Owners(partKey(p), n.cfg.Replicas)
		if len(owners) > 0 && owners[0] != n.id && hops < maxIngestHops {
			return n.forwardIngest(owners, p, rows, idemKey, hops, sp)
		}
		return PartIngestResult{Part: p, Rows: len(rows),
			Error: fmt.Sprintf("dist: primary %s does not hold partition %d", n.id, p)}
	}
	mu.Lock()
	ms := n.members()
	owners := ms.ring.Owners(partKey(p), n.cfg.Replicas)
	if len(owners) == 0 || owners[0] != n.id {
		mu.Unlock()
		if hops >= maxIngestHops {
			return PartIngestResult{Part: p, Rows: len(rows),
				Error: fmt.Sprintf("dist: node %s is no longer the primary of partition %d", n.id, p)}
		}
		return n.forwardIngest(owners, p, rows, idemKey, hops, sp)
	}
	defer mu.Unlock()
	// Under the partition lock, so a concurrent retry of the same batch
	// serialises behind the original apply and sees its outcome.
	if pr, ok := n.idemGet(idemKey, p); ok {
		n.logger.Debug("idempotent ingest replay", "part", p, "seq", pr.Seq, "key", idemKey)
		return pr
	}
	n.mu.RLock()
	seq := n.lastSeq[p] + 1
	n.mu.RUnlock()
	if err := n.applyBatch(p, seq, rows, true, sp); err != nil {
		return PartIngestResult{Part: p, Rows: len(rows), Error: err.Error()}
	}
	rsp := sp.Child("replicate")
	var batchLag uint64
	fanout := func(ms *memberState, owners []string) int {
		acks := 1
		for _, o := range owners[1:] {
			if o == n.id {
				continue
			}
			url, ok := ms.urls[o]
			if !ok || url == "" || !n.health.available(url) {
				continue
			}
			lastSeq, err := n.replicateTo(url, p, seq, rows)
			n.health.observe(url, err)
			if err != nil {
				n.logger.Warn("replicate failed", "part", p, "seq", seq, "peer", o, "err", err)
				continue
			}
			if lastSeq < seq {
				// The replica responded but sits behind this batch (a gap
				// its inline heal could not drain): primary-observed lag.
				if gap := seq - lastSeq; gap > batchLag {
					batchLag = gap
				}
				continue
			}
			acks++
		}
		return acks
	}
	acks := fanout(ms, owners)
	if acks < n.writeQuorum(len(owners)) {
		// Quorum miss under the owner set we started with. If the
		// membership epoch advanced mid-batch — a replica left or the
		// partition gained a new holder during the fan-out — re-resolve
		// and replicate against the CURRENT owners before giving up:
		// replicas dedup by sequence, so the retry is idempotent, and
		// this closes the cutover window where a departing replica
		// stops accepting connections between our owner snapshot and
		// the replicate call.
		if cur := n.members(); cur.view.Epoch > ms.view.Epoch {
			nowners := cur.ring.Owners(partKey(p), n.cfg.Replicas)
			if len(nowners) > 0 && nowners[0] == n.id {
				ms, owners = cur, nowners
				acks = fanout(cur, nowners)
			}
		}
	}
	// Publish the worst responding-replica gap of the latest fan-out as
	// this node's replication-lag gauge (the flight recorder samples it
	// every second; healthy batches reset it to zero).
	n.repLag.Store(int64(batchLag))
	rsp.End()
	rsp.SetAttrInt("acks", int64(acks))
	acked := acks >= n.writeQuorum(len(owners))
	if !acked {
		n.logger.Warn("ingest batch under quorum",
			"part", p, "seq", seq, "acks", acks, "quorum", n.writeQuorum(len(owners)))
	}
	pr := PartIngestResult{
		Part: p, Rows: len(rows), Seq: seq,
		Acked: acked,
	}
	// The batch is applied (whatever the quorum verdict): remember its
	// outcome so a retried delivery replays instead of re-applying.
	n.idemPut(idemKey, p, pr)
	return pr
}

// replicateTo ships one sequenced batch to a replica owner and returns
// the replica's last applied sequence. HTTP 200 means the batch (or a
// later one) is applied; 409 means the replica is still gapped after
// its inline heal — the caller reads the shortfall off LastSeq instead
// of treating the responsive peer as down.
func (n *Node) replicateTo(url string, p int, seq uint64, rows []storage.Row) (uint64, error) {
	body, err := json.Marshal(ReplicateRequest{Part: p, Seq: seq, Rows: rowsToWire(rows), Epoch: n.epoch()})
	if err != nil {
		return 0, err
	}
	resp, err := n.hc.Post(url+"/v1/replicate", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		return 0, fmt.Errorf("replicate to %s: HTTP %d: %w", url, resp.StatusCode, errPeerResponded)
	}
	var rr ReplicateResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return 0, fmt.Errorf("replicate to %s: %w", url, err)
	}
	n.noteEpoch(rr.Epoch)
	return rr.LastSeq, nil
}

// forwardIngest proxies one partition batch to its primary and adapts
// the primary's response. Only the primary may sequence the batch, so
// unlike query forwarding there is no local fallback. A TRANSPORT
// failure, though, gets one retry after re-resolving the primary under
// the current membership: the resolved primary may have just left the
// cluster (its listener closes right after the cutover), and the batch
// belongs to whichever node now owns the partition. A primary that
// RESPONDS with an error is not retried — that is an application
// outcome, not stale routing.
func (n *Node) forwardIngest(owners []string, p int, rows []storage.Row, idemKey string, hops int, sp *trace.Span) PartIngestResult {
	fail := func(msg string) PartIngestResult {
		return PartIngestResult{Part: p, Rows: len(rows), Error: msg}
	}
	// The idempotency key rides along: a client retry entering through a
	// different member still dedups at the same primary.
	body, err := json.Marshal(IngestRequest{Rows: rowsToWire(rows), Trace: sp != nil, IdemKey: idemKey})
	if err != nil {
		return fail(err.Error())
	}
	lastMsg := "dist: partition has no ring owners"
	tried := make(map[string]bool, 2)
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			owners = n.members().ring.Owners(partKey(p), n.cfg.Replicas)
			if len(owners) == 0 {
				break
			}
			if owners[0] == n.id {
				// The refreshed view made US the primary: sequence the
				// batch locally instead of bouncing it further.
				return n.primaryIngest(p, rows, idemKey, hops+1, sp)
			}
			if tried[owners[0]] {
				break // same primary as before; transport is just down
			}
		}
		if len(owners) == 0 {
			break
		}
		primary := owners[0]
		tried[primary] = true
		url, ok := n.members().urls[primary]
		if !ok || url == "" || !n.health.available(url) {
			lastMsg = fmt.Sprintf("dist: primary %s of partition %d is unreachable", primary, p)
			continue
		}
		fsp := sp.Child("forward")
		fsp.SetAttr("primary", primary)
		hreq, err := http.NewRequest(http.MethodPost, url+"/v1/ingest", bytes.NewReader(body))
		if err != nil {
			fsp.End()
			return fail(err.Error())
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set(forwardHeader, strconv.Itoa(hops+1))
		resp, err := n.hc.Do(hreq)
		if err != nil {
			fsp.End()
			n.health.observe(url, err)
			n.logger.Warn("ingest forward failed", "part", p, "primary", primary, "err", err)
			lastMsg = fmt.Sprintf("dist: primary %s of partition %d: %v", primary, p, err)
			continue
		}
		var out IngestResponse
		derr := json.NewDecoder(resp.Body).Decode(&out)
		drainClose(resp.Body)
		if derr != nil || resp.StatusCode != http.StatusOK {
			fsp.End()
			if resp.StatusCode >= 500 {
				n.health.observe(url, fmt.Errorf("%w: ingest forward HTTP %d", errPeerResponded, resp.StatusCode))
			} else {
				n.health.observe(url, nil)
			}
			return fail(fmt.Sprintf("dist: primary %s of partition %d: HTTP %d", primary, p, resp.StatusCode))
		}
		n.health.observe(url, nil)
		n.noteEpoch(out.Epoch)
		// Graft the primary's span tree under this node's forward span.
		fsp.AttachWire(out.Spans)
		fsp.End()
		for _, pr := range out.Parts {
			if pr.Part == p {
				return pr
			}
		}
		return fail("dist: primary response missing the partition result")
	}
	return fail(lastMsg)
}

func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if !n.ingestGate() {
		serve.WriteJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": errNodeClosing.Error()})
		return
	}
	defer n.closeDone()
	var req ReplicateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&req); err != nil {
		serve.WriteError(w, fmt.Errorf("%w: %v", query.ErrBadQuery, err))
		return
	}
	n.noteEpoch(req.Epoch)
	ok := func(last uint64) {
		serve.WriteJSON(w, http.StatusOK, ReplicateResponse{LastSeq: last, Epoch: n.epoch()})
	}
	conflict := func(last uint64) {
		serve.WriteJSON(w, http.StatusConflict, ReplicateResponse{LastSeq: last, Epoch: n.epoch()})
	}
	if mu := n.partLock(req.Part); mu != nil {
		mu.Lock()
		// Re-check under the lock: a view change may have retired the
		// partition while we waited; fall through to the staged/retired
		// paths below if so.
		if n.holdsPart(req.Part) {
			last := n.partSeqLocked(req.Part)
			if req.Seq > last+1 {
				// Sequence gap: this replica missed a batch. Heal inline
				// by fetching the missing tail from the peer holders (the
				// primary already has every earlier batch — including
				// this one — in its WAL), then re-check. Refusing to
				// buffer out-of-order batches keeps every holder's
				// partition a prefix of one log.
				n.logger.Warn("replication gap, healing inline",
					"part", req.Part, "applied", last, "incoming", req.Seq)
				mu.Unlock()
				_, _ = n.catchUpPartition(req.Part)
				mu.Lock()
				last = n.partSeqLocked(req.Part)
			}
			defer mu.Unlock()
			if req.Seq <= last {
				// Duplicate delivery (or healed by catch-up): idempotent
				// ack.
				ok(last)
				return
			}
			if req.Seq != last+1 {
				// Still gapped after the heal attempt: reject so the
				// primary counts no ack.
				conflict(last)
				return
			}
			if err := n.applyBatch(req.Part, req.Seq, wireToRows(req.Rows), true, nil); err != nil {
				serve.WriteError(w, err)
				return
			}
			ok(req.Seq)
			return
		}
		mu.Unlock()
	}
	// Staged copy (this node gains the partition in a pending view):
	// keep absorbing the primary's stream so the cutover delta stays
	// small.
	n.stageMu.Lock()
	if st := n.staged[req.Part]; st != nil {
		defer n.stageMu.Unlock()
		switch {
		case req.Seq <= st.lastSeq:
			ok(st.lastSeq)
		case req.Seq == st.lastSeq+1:
			st.rows = append(st.rows, wireToRows(req.Rows)...)
			st.lastSeq = req.Seq
			ok(st.lastSeq)
		default:
			conflict(st.lastSeq)
		}
		return
	}
	n.stageMu.Unlock()
	// Retired copy (this node just lost the partition): the old primary
	// may not have adopted the view yet, and failing its replicate
	// would cost a client its ack in the cutover window. Keep applying
	// in sequence — the retained WAL keeps the batch durable and the
	// gainer's final sync can still fetch it from us.
	if rp := n.retiredPartOf(req.Part); rp != nil {
		rp.mu.Lock()
		defer rp.mu.Unlock()
		switch {
		case req.Seq <= rp.lastSeq:
			ok(rp.lastSeq)
		case req.Seq == rp.lastSeq+1:
			if rp.wal != nil {
				if err := rp.wal.Append(req.Seq, wireToRows(req.Rows)); err != nil {
					serve.WriteError(w, err)
					return
				}
			}
			rp.rows = append(rp.rows, wireToRows(req.Rows)...)
			rp.lastSeq = req.Seq
			ok(rp.lastSeq)
		default:
			conflict(rp.lastSeq)
		}
		return
	}
	serve.WriteJSON(w, http.StatusNotFound, map[string]string{
		"error": fmt.Sprintf("dist: node %s does not hold partition %d", n.id, req.Part),
	})
}

// holdsPart reports whether p is in the live partition map.
func (n *Node) holdsPart(p int) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.parts[p]
	return ok
}

// partSeqLocked reads a partition's last applied sequence (callers hold
// the partition ingest lock; n.mu still guards the map itself).
func (n *Node) partSeqLocked(p int) uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.lastSeq[p]
}

func (n *Node) handleWALFetch(w http.ResponseWriter, r *http.Request) {
	var req WALFetchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		serve.WriteError(w, fmt.Errorf("%w: %v", query.ErrBadQuery, err))
		return
	}
	n.noteEpoch(req.Epoch)
	max := req.Max
	if max <= 0 {
		max = walFetchMaxDefault
	}
	if mu := n.partLock(req.Part); mu != nil {
		// TryLock, never Lock: two replicas healing each other (or a
		// gainer syncing from a donor that is itself mid-ingest) must
		// not deadlock across the wire. An unfenced response is still
		// useful — the tail is valid, LastSeq just may advance.
		fenced := mu.TryLock()
		n.mu.RLock()
		_, held := n.parts[req.Part]
		lastSeq := n.lastSeq[req.Part]
		l := n.wals[req.Part]
		n.mu.RUnlock()
		if held {
			resp := WALFetchResponse{Part: req.Part, LastSeq: lastSeq,
				Fenced: fenced, Epoch: n.epoch()}
			if l == nil {
				resp.NoWAL = true
			} else {
				entries, truncated, err := l.EntriesAfterN(req.After, max)
				if err != nil {
					if fenced {
						mu.Unlock()
					}
					serve.WriteError(w, err)
					return
				}
				resp.Truncated = truncated
				for _, e := range entries {
					resp.Entries = append(resp.Entries, WALFetchEntry{Seq: e.Seq, Rows: rowsToWire(e.Rows)})
				}
			}
			if fenced {
				mu.Unlock()
			}
			serve.WriteJSON(w, http.StatusOK, resp)
			return
		}
		if fenced {
			mu.Unlock()
		}
	}
	// Retired copy: always fenced — replicateRetired appends under
	// rp.mu, which we hold for the whole read.
	if rp := n.retiredPartOf(req.Part); rp != nil {
		rp.mu.Lock()
		resp := WALFetchResponse{Part: req.Part, LastSeq: rp.lastSeq,
			Fenced: true, Epoch: n.epoch()}
		if rp.wal == nil {
			rp.mu.Unlock()
			resp.NoWAL = true
			serve.WriteJSON(w, http.StatusOK, resp)
			return
		}
		entries, truncated, err := rp.wal.EntriesAfterN(req.After, max)
		rp.mu.Unlock()
		if err != nil {
			serve.WriteError(w, err)
			return
		}
		resp.Truncated = truncated
		for _, e := range entries {
			resp.Entries = append(resp.Entries, WALFetchEntry{Seq: e.Seq, Rows: rowsToWire(e.Rows)})
		}
		serve.WriteJSON(w, http.StatusOK, resp)
		return
	}
	serve.WriteJSON(w, http.StatusNotFound, map[string]string{
		"error": fmt.Sprintf("dist: node %s has no WAL for partition %d", n.id, req.Part),
	})
}

// CatchUp fetches every owned partition's missed log tail from peer
// holders and applies it — the second half of snapshot-plus-log-replay
// recovery: Load replays the local WAL, CatchUp closes the gap the node
// missed while it was down. It returns how many batches were fetched.
func (n *Node) CatchUp() (int, error) {
	if !n.ingestGate() {
		return 0, errNodeClosing
	}
	defer n.closeDone()
	n.mu.RLock()
	owned := make([]int, 0, len(n.parts))
	for p := range n.parts {
		owned = append(owned, p)
	}
	n.mu.RUnlock()
	sort.Ints(owned)
	var fetched int
	var lastErr error
	for _, p := range owned {
		np, err := n.catchUpPartition(p)
		fetched += np
		if err != nil {
			lastErr = err
		}
	}
	if fetched > 0 || lastErr != nil {
		n.logger.Info("catch-up finished",
			"batches", fetched, "partitions", len(owned), "err", lastErr)
	}
	return fetched, lastErr
}

func (n *Node) catchUpPartition(p int) (int, error) {
	mu := n.partLock(p)
	if mu == nil {
		return 0, nil
	}
	mu.Lock()
	defer mu.Unlock()
	var applied int
	var lastErr error
	ms := n.members()
	// Consult EVERY reachable holder, not just the first: a holder can
	// itself be behind (it missed a replication too), so stopping at
	// one donor could silently strand acked batches that another
	// holder still has.
	for _, holder := range ms.ring.Owners(partKey(p), n.cfg.Replicas) {
		if holder == n.id {
			continue
		}
		url, ok := ms.urls[holder]
		if !ok || url == "" || !n.health.available(url) {
			continue
		}
		// A bounded fetch may truncate a long tail: keep fetching from
		// this donor while each round applies at least one batch (the
		// progress check stops a donor that is itself behind from
		// looping us forever).
		for {
			// Fetch failures are NOT held against the peer: catch-up
			// runs at boot, when the rest of the cluster may still be
			// starting, and quarantining peers here would poison the
			// first cooldown window of serving (ingest has no local
			// fallback).
			resp, err := n.fetchTail(url, p, n.partSeqLocked(p), 0)
			if err != nil {
				lastErr = err
				break
			}
			if resp == nil || resp.NoWAL {
				break // holder keeps no WAL; nothing to fetch
			}
			roundApplied := 0
			for _, e := range resp.Entries {
				cur := n.partSeqLocked(p)
				if e.Seq <= cur {
					continue
				}
				if e.Seq != cur+1 {
					break // gap in this donor's tail; the next holder may fill it
				}
				if err := n.applyBatch(p, e.Seq, wireToRows(e.Rows), true, nil); err != nil {
					return applied, err
				}
				roundApplied++
			}
			applied += roundApplied
			if !resp.Truncated || roundApplied == 0 {
				break
			}
		}
	}
	return applied, lastErr
}

// fetchTail fetches partition p's WAL tail after the given sequence
// from a peer. max <= 0 lets the donor apply its default bound. A 404
// (holder keeps no WAL, pre-elastic peer) returns (nil, nil).
func (n *Node) fetchTail(url string, p int, after uint64, max int) (*WALFetchResponse, error) {
	body, err := json.Marshal(WALFetchRequest{Part: p, After: after, Max: max, Epoch: n.epoch()})
	if err != nil {
		return nil, err
	}
	resp, err := n.hc.Post(url+"/v1/walfetch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil // holder keeps no WAL; nothing to fetch
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("walfetch from %s: HTTP %d: %w", url, resp.StatusCode, errPeerResponded)
	}
	var out WALFetchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	n.noteEpoch(out.Epoch)
	sort.Slice(out.Entries, func(i, j int) bool { return out.Entries[i].Seq < out.Entries[j].Seq })
	return &out, nil
}
