package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/internal/trace"
)

// forwardHeader marks a node-to-node forwarded request. On the query
// path any non-empty value means "answer locally, never bounce". On
// the ingest path it carries a hop COUNT: a membership change can
// briefly leave two nodes disagreeing about a partition's primary, so
// one extra re-forward hop is allowed before the request is pinned
// where it is.
const forwardHeader = "X-Sea-Forwarded"

// maxIngestHops bounds ingest re-forwarding during membership
// disagreement windows: at this hop count a node applies the batch as
// primary itself rather than forwarding again.
const maxIngestHops = 2

// errNodeClosing rejects new mutating work once Close has begun.
var errNodeClosing = fmt.Errorf("dist: node closing")

// Node is one cluster member: the data partitions the ring assigns it,
// an agent pool over them (predictions are node-local; exact fallbacks
// scatter-gather across the partition holders), and the node-to-node
// HTTP API. Construct with NewNode, Load the data, then serve Handler().
type Node struct {
	cfg     Config
	id      string
	health  *health
	hc      *http.Client
	mux     *http.ServeMux
	started time.Time

	// member is the node's resolved membership (view + ring + URLs),
	// swapped atomically on every view change: a reader resolves
	// owners, forwards and replica URLs against ONE consistent state.
	// viewMu serialises applyView; refreshing coalesces background
	// membership refreshes; rebalanceMu serialises coordinated
	// join/leave changes (a node can adopt another coordinator's view
	// while orchestrating its own, hence two locks).
	member      atomic.Pointer[memberState]
	viewMu      sync.Mutex
	refreshing  atomic.Bool
	rebalanceMu sync.Mutex
	movesTotal  atomic.Int64
	lastChange  atomic.Int64 // unix ms of the last applied view

	// closeMu gates mutating handlers against Close: handlers hold the
	// read side from admission through their WAL append and response
	// write; Close takes the write side after marking closed, so it
	// cannot proceed until every admitted handler finished. closing
	// makes Close idempotent.
	closeMu sync.RWMutex
	closed  bool
	closing atomic.Bool

	// staged holds partition snapshots shipped ahead of a view change
	// (rebalance.go); retired holds partitions this node no longer owns
	// but keeps serving as a donor/ack sink until Close.
	stageMu  sync.Mutex
	staged   map[int]*stagedPart
	retireMu sync.Mutex
	retired  map[int]*retiredPart

	// Anti-entropy state: armed flag (one atomic load on the disarmed
	// tick), stop channel for the background loop, lifetime counters.
	aeArmed     atomic.Bool
	aeStop      chan struct{}
	aeTicks     atomic.Int64
	aeChecked   atomic.Int64
	aeDivergent atomic.Int64
	aeRepairs   atomic.Int64

	// dataRPCs counts data-plane requests served (query, partials,
	// ingest, replicate, walfetch) — the client-staleness regression
	// test asserts a removed member's count stays flat.
	dataRPCs atomic.Int64

	// fault is the node's chaos-injection rule set: it wraps the
	// node-to-node HTTP transport and is driven by POST /v1/debug/chaos.
	// Disabled (the default) it costs one atomic load per request.
	fault *chaos.Fault

	// partialLat observes successful primary /v1/partials round-trip
	// latencies; hedgeNs caches the configured quantile of it (the
	// scatter hedging delay, recomputed every hedgeRecalcEvery samples).
	partialLat  metrics.Histogram
	partialLatN atomic.Int64
	hedgeNs     atomic.Int64

	// idemMu guards the primary-side ingest idempotency cache: recently
	// applied (idem key, partition) outcomes, replayed on client retry
	// so a broken-connection retry cannot double-ingest. Bounded FIFO.
	idemMu    sync.Mutex
	idem      map[string]PartIngestResult
	idemOrder []string

	pool  *serve.Pool
	sched *serve.Scheduler

	// logger is the node's structured logger (cfg.Logger bound to this
	// node's id); nil when unwired — every call site is nil-safe.
	logger *obs.Logger
	// slo evaluates per-tenant-class burn rates (nil when disabled).
	slo *metrics.SLOEngine
	// sampler caches runtime telemetry; samplerBG records whether its
	// background loop runs (otherwise status requests sample on
	// demand).
	sampler   *obs.RuntimeSampler
	samplerBG bool

	// tracer owns the node's span trees: the background sampler, the
	// bounded ring behind GET /v1/debug/trace/<id>, and the slow-query
	// log. It is also installed on the pool, so every tier of the
	// serving path threads spans through it.
	tracer *trace.Tracer

	// maints are the per-agent background drift maintainers (nil when
	// RequantCheck is disabled).
	maints []*ingest.Maintainer

	// flight is the node's flight recorder (nil when cfg.Flight is
	// off); repLag is the primary-observed replication lag it samples:
	// the worst sequence gap among responding replicas of the latest
	// replicated batch.
	flight *flight.Recorder
	repLag atomic.Int64

	// mu guards the partition map and the live-ingest bookkeeping.
	// Base rows are laid down once by Load; the ingest path appends
	// under the write lock (serialised per partition by partMu).
	// cols mirrors each held partition as a columnar projection with a
	// zone map, so node-local exact partials run through the vectorized
	// batch kernels; a partition whose projection goes ragged (width-
	// mismatched ingested row) falls back to the row path.
	mu       sync.RWMutex
	parts    map[int][]storage.Row
	cols     map[int]*storage.ColStore
	rowsHeld int64
	version  int64
	lastSeq  map[int]uint64
	wals     map[int]*ingest.Log
	partMu   map[int]*sync.Mutex
	// baseLen counts each partition's base (bulk-loaded) row prefix:
	// rows[:baseLen] are re-laid deterministically by Load on restart
	// and never belong in the WAL; rows[baseLen:] arrived via ingest.
	// Migration snapshots ship it so a gainer re-seeds its WAL with
	// only the ingested tail.
	baseLen map[int]int

	// partialsServed counts incoming partial-state RPCs (batched and
	// legacy); partialsSent counts outgoing batched rounds. E17 and the
	// dist tests use them to assert the message-minimal fan-out shape.
	partialsServed atomic.Int64
	partialsSent   atomic.Int64

	// ingestEpoch advances for every ingest batch this node FORWARDS
	// to a primary: the batch changes cluster data the node's own
	// version counter never sees (it holds none of the written
	// partitions), yet the node knows about it — so it must expire its
	// cached cluster-wide answers. Folded into cacheVersion.
	ingestEpoch atomic.Int64
	// absorbedVer is the highest data version whose batch the agents
	// have fully absorbed. The answer cache stamps with THIS, not the
	// live version: between a batch's apply (version visible) and its
	// AbsorbRows (models updated), an answer computed from the
	// pre-batch models must not be cached at the post-batch version —
	// it would pass every later check and outlive the data it missed.
	absorbedVer atomic.Int64
}

// NewNode builds a node from cfg. The node holds no data until Load.
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.ID == "" {
		return nil, fmt.Errorf("dist: config needs a node ID")
	}
	// A joiner boots from a fetched view rather than a peer map, so the
	// self-in-peers invariant only binds the static-config path.
	if cfg.InitialView == nil {
		if _, ok := cfg.Peers[cfg.ID]; !ok && len(cfg.Peers) > 0 {
			return nil, fmt.Errorf("dist: node %q missing from its own peer map", cfg.ID)
		}
	}
	var view View
	if cfg.InitialView != nil {
		view = cfg.InitialView.clone()
		view.normalize()
	} else {
		view = viewFromPeers(cfg.ID, cfg.Peers)
	}
	fault := chaos.New()
	n := &Node{
		cfg:     cfg,
		id:      cfg.ID,
		health:  newHealth(cfg.Cooldown, cfg.Timeout, cfg.breakerCfg()),
		hc:      newHTTPClient(cfg.Timeout, fault),
		fault:   fault,
		started: time.Now(),
		logger:  cfg.Logger.With("node", cfg.ID),
		parts:   make(map[int][]storage.Row),
		cols:    make(map[int]*storage.ColStore),
		version: 1, // bulk-loaded base data is version 1; ingest advances it
		lastSeq: make(map[int]uint64),
		wals:    make(map[int]*ingest.Log),
		partMu:  make(map[int]*sync.Mutex),
		baseLen: make(map[int]int),
		staged:  make(map[int]*stagedPart),
		retired: make(map[int]*retiredPart),
		idem:    make(map[string]PartIngestResult),
	}
	n.member.Store(newMemberState(view, cfg.VNodes))
	// AntiEntropy != 0 arms the tick; only > 0 runs the background
	// loop (< 0 lets tests/experiments drive AntiEntropyTick manually;
	// 0 disarms the tick entirely).
	if cfg.AntiEntropy != 0 {
		n.aeArmed.Store(true)
	}
	if cfg.AntiEntropy > 0 {
		n.aeStop = make(chan struct{})
		go n.antiEntropyLoop(cfg.AntiEntropy)
	}
	agents := make([]*core.Agent, cfg.Agents)
	for i := range agents {
		ag, err := core.NewAgent(scatterOracle{n: n}, cfg.Agent)
		if err != nil {
			return nil, fmt.Errorf("dist: %w", err)
		}
		agents[i] = ag
	}
	pool, err := serve.NewPool(agents, nil)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	if cfg.AnswerCache > 0 {
		pool.EnableCache(cfg.AnswerCache)
		if cfg.AnswerCacheTTL > 0 {
			pool.Cache().SetTTL(cfg.AnswerCacheTTL)
		}
		pool.SetCacheVersion(n.cacheVersion)
	}
	n.pool = pool
	n.tracer = trace.NewTracer(cfg.ID, cfg.TraceRing)
	n.tracer.SetSampleRate(cfg.TraceSample)
	if cfg.SlowQuery > 0 {
		n.tracer.SetSlowThreshold(cfg.SlowQuery)
	}
	pool.EnableTracing(n.tracer)
	if cfg.AuditSample > 0 {
		every := int64(1)
		if cfg.AuditSample < 1 {
			every = int64(math.Round(1 / cfg.AuditSample))
		}
		pool.EnableShadowAudit(every, 0)
	}
	rec := pool.Recorder()
	rec.RegisterGauge("sea_wal_segments",
		"WAL segment files across this node's owned partitions.",
		func() float64 {
			n.mu.RLock()
			defer n.mu.RUnlock()
			total := 0
			for _, l := range n.wals {
				total += l.Segments()
			}
			return float64(total)
		})
	rec.RegisterGauge("sea_absorbed_version",
		"Highest data version the agents' models have fully absorbed.",
		func() float64 { return float64(n.absorbedVer.Load()) })
	rec.RegisterGauge("sea_ingest_epoch",
		"Ingest batches this node forwarded to other primaries.",
		func() float64 { return float64(n.ingestEpoch.Load()) })
	rec.RegisterGauge("sea_breaker_state",
		"Worst per-peer circuit-breaker state (0 closed, 1 half-open, 2 open).",
		func() float64 { return float64(n.health.worstBreaker()) })
	rec.RegisterGauge("sea_membership_epoch",
		"Current membership view epoch (advances on every join/leave).",
		func() float64 { return float64(n.epoch()) })
	rec.RegisterGauge("sea_antientropy_repairs_total",
		"Divergent replicas healed by the anti-entropy repair loop.",
		func() float64 { return float64(n.aeRepairs.Load()) })
	rec.RegisterGauge("sea_rebalance_moves_total",
		"Partition replicas this node moved as a rebalance coordinator.",
		func() float64 { return float64(n.movesTotal.Load()) })
	rec.RegisterGauge("sea_probation_quanta",
		"Quanta serving under post-invalidation probation across the node's agents.",
		func() float64 {
			total := 0
			for _, ag := range agents {
				total += ag.ProbationQuanta()
			}
			return float64(total)
		})
	pool.SetLogger(n.logger)
	if cfg.SLO != nil {
		n.slo = metrics.NewSLOEngine(rec, *cfg.SLO)
		n.slo.Start()
		rec.SetSLO(n.slo)
	}
	n.sampler = obs.NewRuntimeSampler(cfg.RuntimeSample)
	n.sampler.Register(rec)
	if cfg.RuntimeSample > 0 {
		n.sampler.Start()
		n.samplerBG = true
	}
	n.sched = serve.NewScheduler(pool, serve.SchedulerConfig{
		Workers:        cfg.Workers,
		QueueDepth:     cfg.QueueDepth,
		TenantInflight: cfg.TenantInflight,
	})
	if cfg.RequantCheck > 0 {
		for _, ag := range agents {
			m := ingest.NewMaintainer(ag, ingest.MaintainerConfig{
				Interval: cfg.RequantCheck,
				OnRebuild: func(err error) {
					if err != nil {
						n.logger.Warn("model rebuild failed", "err", err)
						return
					}
					rec.Rebuild()
					// The swapped-in models predict differently at
					// the same data version: drop cached answers.
					pool.FlushCache()
					n.logger.Debug("model rebuilt, cache flushed")
				},
			})
			m.Start()
			n.maints = append(n.maints, m)
		}
	}
	if cfg.Flight {
		spool := cfg.FlightSpool
		if spool == "" {
			if cfg.DataDir != "" {
				spool = filepath.Join(cfg.DataDir, "flight")
			} else {
				spool = filepath.Join(os.TempDir(), "sea-flight")
			}
		}
		fr := flight.New(flight.Config{
			Node:   cfg.ID,
			Period: cfg.FlightSample,
			// Per-node spool subdirectory: a LocalCluster shares one
			// config root across members.
			SpoolDir: filepath.Join(spool, cfg.ID),
			Anomaly:  cfg.Anomaly,
			Logger:   n.logger,
			TracerFn: func() *trace.Tracer { return n.tracer },
			StatusFn: func() any { return n.NodeStatus() },
		})
		fr.Instrument(rec)
		fr.AddGauge("sched_queue_depth",
			func() float64 { return float64(n.sched.QueueDepth()) })
		fr.AddGauge("replication_lag",
			func() float64 { return float64(n.repLag.Load()) })
		fr.AddGauge("breaker_state",
			func() float64 { return float64(n.health.worstBreaker()) })
		fr.Watch("lat_p99_all", "queries", "errors", "rejected",
			"sea_go_goroutines", "sea_go_heap_alloc_bytes", "replication_lag",
			"rpc_retries", "hedges", "degraded_answers", "breaker_state")
		n.flight = fr
		// FlightSample < 0 leaves the sampler unstarted: tests and
		// experiments drive Tick from a synthetic clock.
		if cfg.FlightSample >= 0 {
			fr.Start()
		}
	}
	n.mux = http.NewServeMux()
	n.mux.HandleFunc("POST /v1/query", n.handleQuery)
	n.mux.HandleFunc("POST /v1/partial", n.handlePartial)
	n.mux.HandleFunc("POST /v1/partials", n.handlePartials)
	n.mux.HandleFunc("POST /v1/ingest", n.handleIngest)
	n.mux.HandleFunc("POST /v1/replicate", n.handleReplicate)
	n.mux.HandleFunc("POST /v1/walfetch", n.handleWALFetch)
	n.mux.HandleFunc("GET /v1/membership", n.handleMembershipGet)
	n.mux.HandleFunc("POST /v1/membership", n.handleMembershipPost)
	n.mux.HandleFunc("POST /v1/join", n.handleJoin)
	n.mux.HandleFunc("POST /v1/leave", n.handleLeave)
	n.mux.HandleFunc("POST /v1/migrate", n.handleMigrate)
	n.mux.HandleFunc("POST /v1/partsnap", n.handlePartSnap)
	n.mux.HandleFunc("POST /v1/digest", n.handleDigest)
	n.mux.HandleFunc("GET /v1/rebalance", n.handleRebalance)
	n.mux.HandleFunc("GET /v1/snapshot", n.handleSnapshot)
	n.mux.HandleFunc("GET /v1/cluster", n.handleCluster)
	n.mux.HandleFunc("GET /v1/status", n.handleStatus)
	n.mux.HandleFunc("GET /v1/debug/cluster", n.handleDebugCluster)
	n.mux.HandleFunc("POST /v1/debug/chaos", n.handleChaosSet)
	n.mux.HandleFunc("GET /v1/debug/chaos", n.handleChaosGet)
	n.mux.HandleFunc("GET /v1/metrics", n.handleMetrics)
	serve.RegisterDebug(n.mux, func() *trace.Tracer { return n.tracer })
	serve.RegisterFlight(n.mux, func() *flight.Recorder { return n.flight })
	n.pool.EnableFlight(n.flight)
	if cfg.Pprof {
		serve.RegisterPprof(n.mux)
	}
	n.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	return n, nil
}

// ID returns the node's member id.
func (n *Node) ID() string { return n.id }

// Ring returns the node's current placement ring (immutable; a view
// change swaps in a freshly built ring).
func (n *Node) Ring() *Ring { return n.members().ring }

// Pool returns the node's agent pool (for stats and warm-up).
func (n *Node) Pool() *serve.Pool { return n.pool }

// Tracer returns the node's tracer (debug endpoints, tests).
func (n *Node) Tracer() *trace.Tracer { return n.tracer }

// Flight returns the node's flight recorder (nil when disabled).
func (n *Node) Flight() *flight.Recorder { return n.flight }

// SLO returns the node's SLO engine (nil when disabled). Exported so
// experiments can drive Tick from a synthetic clock.
func (n *Node) SLO() *metrics.SLOEngine { return n.slo }

// Handler returns the node's HTTP API, with data-plane requests
// counted (DataRPCs).
func (n *Node) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/query", "/v1/partial", "/v1/partials",
			"/v1/ingest", "/v1/replicate", "/v1/walfetch":
			n.dataRPCs.Add(1)
		}
		n.mux.ServeHTTP(w, r)
	})
}

// DataRPCs returns the number of data-plane requests (query, partials,
// ingest, replicate, walfetch) this node has served over HTTP. The
// client-staleness regression test asserts a departed member's count
// stays flat after the view change.
func (n *Node) DataRPCs() int64 { return n.dataRPCs.Load() }

// Fault returns the node's chaos fault set — the programmatic face of
// POST /v1/debug/chaos (tests and LocalCluster arm it directly).
func (n *Node) Fault() *chaos.Fault { return n.fault }

// rec returns the node's serving recorder (the resilience counters:
// RPC retries, hedges, degraded answers).
func (n *Node) rec() *metrics.ServeRecorder { return n.pool.Recorder() }

// chaosState is the GET/POST /v1/debug/chaos wire form: POST installs
// (enabled + rules) or clears (enabled false) the node's fault set; both
// verbs return the state plus injected-fault counters.
type chaosState struct {
	Enabled bool         `json:"enabled"`
	Rules   []chaos.Rule `json:"rules,omitempty"`
	Stats   *chaos.Stats `json:"stats,omitempty"`
}

func (n *Node) handleChaosSet(w http.ResponseWriter, r *http.Request) {
	var req chaosState
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		serve.WriteError(w, fmt.Errorf("%w: %v", query.ErrBadQuery, err))
		return
	}
	if !req.Enabled {
		n.fault.Clear()
	} else {
		n.fault.Set(req.Rules)
	}
	n.logger.Warn("chaos rules updated",
		"enabled", n.fault.Enabled(), "rules", len(req.Rules))
	n.handleChaosGet(w, r)
}

func (n *Node) handleChaosGet(w http.ResponseWriter, _ *http.Request) {
	st := n.fault.Stats()
	serve.WriteJSON(w, http.StatusOK, chaosState{
		Enabled: n.fault.Enabled(),
		Rules:   n.fault.Rules(),
		Stats:   &st,
	})
}

// Close drains the node's scheduler, stops the drift maintainers, SLO
// engine, runtime sampler and anti-entropy loop, waits out every
// admitted mutating handler (so a replicate ack never races a WAL
// close), and closes the partition WALs — live and retired. In-flight
// queries complete. Idempotent.
func (n *Node) Close() {
	if !n.closing.CompareAndSwap(false, true) {
		return
	}
	for _, m := range n.maints {
		m.Stop()
	}
	n.flight.Stop()
	n.slo.Stop()
	n.sampler.Stop()
	if n.aeStop != nil {
		close(n.aeStop)
	}
	n.sched.Close()
	n.pool.DrainAudits()
	// Flip closed under the write lock: every handler that passed
	// ingestGate holds the read side until its response is written, so
	// this acquisition IS the drain barrier.
	n.closeMu.Lock()
	n.closed = true
	n.closeMu.Unlock()
	n.mu.Lock()
	wals := n.wals
	n.wals = make(map[int]*ingest.Log)
	n.mu.Unlock()
	for _, l := range wals {
		_ = l.Close()
	}
	n.retireMu.Lock()
	retired := n.retired
	n.retired = make(map[int]*retiredPart)
	n.retireMu.Unlock()
	for _, rp := range retired {
		rp.mu.Lock()
		if rp.wal != nil {
			_ = rp.wal.Close()
			rp.wal = nil
		}
		rp.mu.Unlock()
	}
}

// ingestGate admits one mutating handler against Close: true means the
// caller may proceed and MUST call closeDone when finished (it holds
// closeMu's read side through its WAL append and response write), so
// Close cannot close a WAL out from under it. False means the node is
// closing and the work must be rejected.
func (n *Node) ingestGate() bool {
	n.closeMu.RLock()
	if n.closed {
		n.closeMu.RUnlock()
		return false
	}
	return true
}

// closeDone releases the admission taken by a successful ingestGate.
func (n *Node) closeDone() { n.closeMu.RUnlock() }

// Load partitions rows round-robin into cfg.Partitions data partitions
// and keeps the ones whose ring owners include this node (each partition
// lives on Replicas members). With a configured DataDir it then opens
// each owned partition's write-ahead log and replays the surviving
// segments on top of the base rows — the crash-recovery half of the
// live write path. Call once, before serving traffic; afterwards only
// the ingest path mutates the partition map.
func (n *Node) Load(rows []storage.Row) error {
	n.mu.Lock()
	n.parts = make(map[int][]storage.Row)
	n.cols = make(map[int]*storage.ColStore)
	n.rowsHeld = 0
	n.lastSeq = make(map[int]uint64)
	n.partMu = make(map[int]*sync.Mutex)
	n.baseLen = make(map[int]int)
	n.absorbedVer.Store(n.version) // bulk load needs no model absorb
	ring := n.members().ring
	for p := 0; p < n.cfg.Partitions; p++ {
		owners := ring.Owners(partKey(p), n.cfg.Replicas)
		for _, o := range owners {
			if o == n.id {
				n.parts[p] = nil
				// Width is adopted from the first row to land.
				n.cols[p] = storage.NewColStore(-1)
				n.partMu[p] = &sync.Mutex{}
				break
			}
		}
	}
	for i, r := range rows {
		p := i % n.cfg.Partitions
		if _, ok := n.parts[p]; ok {
			n.parts[p] = append(n.parts[p], r)
			n.cols[p].Append(r)
			n.rowsHeld++
		}
	}
	for p, rs := range n.parts {
		n.baseLen[p] = len(rs)
	}
	owned := make([]int, 0, len(n.parts))
	for p := range n.parts {
		owned = append(owned, p)
	}
	n.mu.Unlock()

	if n.cfg.DataDir == "" {
		return nil
	}
	sort.Ints(owned)
	for _, p := range owned {
		l, err := ingest.Open(filepath.Join(n.cfg.DataDir, fmt.Sprintf("part-%d", p)),
			ingest.Options{SyncEvery: n.cfg.WALSyncEvery})
		if err != nil {
			return fmt.Errorf("dist: node %s: %w", n.id, err)
		}
		replayErr := l.Replay(func(e ingest.Entry) error {
			return n.applyBatch(p, e.Seq, e.Rows, false, nil)
		})
		n.mu.Lock()
		n.wals[p] = l
		n.mu.Unlock()
		if replayErr != nil {
			return fmt.Errorf("dist: node %s: replay partition %d: %w", n.id, p, replayErr)
		}
	}
	n.mu.RLock()
	held, rowsHeld := len(n.parts), n.rowsHeld
	n.mu.RUnlock()
	n.logger.Info("loaded", "partitions", held, "rows", rowsHeld, "wal", n.cfg.DataDir != "")
	return nil
}

// partition returns partition p's local rows and whether this node holds
// it.
func (n *Node) partition(p int) ([]storage.Row, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	rows, ok := n.parts[p]
	return rows[:len(rows):len(rows)], ok
}

// schemaWidth returns the row width this node has observed (adopted by
// its columnar mirrors from the data), or -1 when unknown.
func (n *Node) schemaWidth() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, cs := range n.cols {
		if w := cs.Width(); w >= 0 {
			return w
		}
	}
	return -1
}

// localPartial evaluates q's mergeable aggregate state over the node's
// local copy of partition p, preferring the vectorized columnar path:
// the zone map first (a partition that cannot intersect the selection
// contributes a zero state without touching a row), then the batch
// kernels over the columnar view. Partitions without a usable
// projection fall back to the retained row-at-a-time kernel. The
// second return is the number of rows actually read, the third whether
// this node holds p.
func (n *Node) localPartial(p int, q query.Query) ([]float64, int64, bool) {
	n.mu.RLock()
	rows, ok := n.parts[p]
	if !ok {
		n.mu.RUnlock()
		return nil, 0, false
	}
	rows = rows[:len(rows):len(rows)]
	view, vecOK := n.cols[p].View()
	canMatch := true
	if vecOK {
		// Zone test against the live bounds while still holding the
		// read lock: no per-query zone-map copies on the scatter path.
		canMatch = query.ZoneCanMatch(q.Select, n.cols[p].ZoneView())
	}
	n.mu.RUnlock()
	if vecOK && view.Len() == len(rows) {
		if !canMatch {
			return query.ZeroPartial(), 0, true
		}
		return query.PartialEvalView(q, view), int64(view.Len()), true
	}
	return query.PartialEval(q, rows), int64(len(rows)), true
}

// Answer serves one query through the node's own pool (local API used by
// embedding processes; HTTP clients go through /v1/query). With a
// configured ServiceDelay the query also occupies its scheduler worker
// for that long, bounding the node's throughput like a real node's
// storage/NIC service time would.
func (n *Node) Answer(tenant string, q query.Query) (core.Answer, error) {
	return n.AnswerTraced(tenant, q, nil)
}

// AnswerTraced is Answer under a caller-provided (possibly nil) trace —
// the ?trace=1 entry point. A nil trace leaves the pool free to make
// its own background sampling decision.
func (n *Node) AnswerTraced(tenant string, q query.Query, tr *trace.Trace) (core.Answer, error) {
	if len(n.maints) > 0 {
		// Remember the query as rebuild training material for the agent
		// that owns its key slice (background drift maintenance).
		n.maints[n.pool.RouteIndex(serve.Key(q))].Record(q)
	}
	if n.cfg.ServiceDelay <= 0 {
		if tr == nil {
			return n.sched.Answer(tenant, q)
		}
		return n.sched.AnswerTraced(tenant, q, tr)
	}
	v, err := n.sched.Do(tenant, func() (any, error) {
		time.Sleep(n.cfg.ServiceDelay)
		if tr == nil {
			return n.pool.Answer(q)
		}
		return n.pool.AnswerTraced(q, tr)
	})
	if err != nil {
		return core.Answer{}, err
	}
	return v.(core.Answer), nil
}

// owners returns the ring owners for q's canonical key.
func (n *Node) owners(q query.Query) []string {
	return n.members().ring.Owners(serve.Key(q), n.cfg.Replicas)
}

func (n *Node) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req serve.QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		serve.WriteError(w, fmt.Errorf("%w: %v", query.ErrBadQuery, err))
		return
	}
	q, err := req.Query()
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	// Refuse dead-on-arrival requests before any work (including the
	// forward hop): the client stopped waiting, and a retried dead
	// request arrives even deader. serve.WriteError maps this to 504.
	if !q.Deadline.IsZero() && !time.Now().Before(q.Deadline) {
		serve.WriteError(w, serve.ErrDeadline)
		return
	}
	tenant := req.Tenant
	if h := r.Header.Get("X-Tenant"); h != "" {
		tenant = h
	}
	// Fold the resolved tenant back into the wire form so forwarding
	// preserves it: the owner's admission control must see the same
	// tenant the entry node resolved, header or body.
	req.Tenant = tenant

	owners := n.owners(q)
	mine := false
	for _, o := range owners {
		if o == n.id {
			mine = true
			break
		}
	}
	// Forwarded queries are always answered locally (no bouncing); owned
	// queries too. Everything else is proxied to the key's owners with
	// failover, and answered locally as the last resort — any node can
	// scatter-gather, so a fully-degraded ring still serves.
	if mine || r.Header.Get(forwardHeader) != "" {
		n.answerLocal(w, r, tenant, q)
		return
	}
	if n.forward(w, owners, req, r.URL.RawQuery) {
		return
	}
	n.answerLocal(w, r, tenant, q)
}

func (n *Node) answerLocal(w http.ResponseWriter, r *http.Request, tenant string, q query.Query) {
	var tr *trace.Trace
	if serve.TraceRequested(r) {
		tr = n.tracer.Force("query")
	}
	ans, err := n.AnswerTraced(tenant, q, tr)
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	resp := QueryResponse{
		QueryResponse: serve.QueryResponse{
			Value:     ans.Value,
			Predicted: ans.Predicted,
			EstError:  ans.EstError,
			Quantum:   ans.Quantum,
			StaleRows: ans.FreshRows,
			Cost:      serve.ToCostJSON(ans.Cost),
			Degraded:  ans.Degraded,
			Coverage:  ans.Coverage,
		},
		Node:  n.id,
		Epoch: n.epoch(),
	}
	if tr != nil {
		resp.TraceID = tr.ID()
		resp.Trace = tr.Wire()
	}
	serve.WriteJSON(w, http.StatusOK, resp)
}

// forward proxies req to the key's owners in ring order and relays the
// first conclusive response. The original URL query string rides along
// so ?trace=1 reaches the node that actually answers. It reports false
// when every owner was unreachable (the caller then degrades to
// answering locally).
func (n *Node) forward(w http.ResponseWriter, owners []string, req serve.QueryRequest, rawQuery string) bool {
	body, err := json.Marshal(req)
	if err != nil {
		serve.WriteError(w, err)
		return true
	}
	target := "/v1/query"
	if rawQuery != "" {
		target += "?" + rawQuery
	}
	urls := n.members().urls
	for _, o := range owners {
		url, ok := urls[o]
		if !ok || url == "" || o == n.id || !n.health.available(url) {
			continue
		}
		hreq, err := http.NewRequest(http.MethodPost, url+target, bytes.NewReader(body))
		if err != nil {
			continue
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set(forwardHeader, n.id)
		resp, err := n.hc.Do(hreq)
		if err != nil {
			n.health.observe(url, err)
			n.logger.Warn("query forward failed, trying next owner", "peer", o, "err", err)
			continue
		}
		if resp.StatusCode >= 500 && resp.StatusCode != http.StatusGatewayTimeout {
			// The owner responded (alive, don't quarantine) but failed;
			// count it toward the breaker, drain the body so the
			// keep-alive connection is reused, and try the next replica.
			n.health.observe(url, fmt.Errorf("%w: forward HTTP %d", errPeerResponded, resp.StatusCode))
			drainClose(resp.Body)
			continue
		}
		n.health.observe(url, nil)
		defer resp.Body.Close()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		return true
	}
	return false
}

func (n *Node) handlePartial(w http.ResponseWriter, r *http.Request) {
	n.partialsServed.Add(1)
	var req PartialRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		serve.WriteError(w, fmt.Errorf("%w: %v", query.ErrBadQuery, err))
		return
	}
	q, err := req.Query.Query()
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	var root *trace.Span
	if req.Trace {
		root = trace.NewSpan("partial", n.id)
	}
	partial, rowsRead, ok := n.localPartial(req.Part, q)
	root.End()
	root.SetAttrInt("part", int64(req.Part))
	root.SetAttrInt("rows", rowsRead)
	if !ok {
		serve.WriteJSON(w, http.StatusNotFound, map[string]string{
			"error": fmt.Sprintf("dist: node %s does not hold partition %d", n.id, req.Part),
		})
		return
	}
	resp := PartialResponse{
		Partial: partial,
		Rows:    rowsRead,
	}
	if root != nil {
		resp.Spans = []trace.WireSpan{root.Wire()}
	}
	serve.WriteJSON(w, http.StatusOK, resp)
}

// handlePartials is the batched partial-state endpoint: one round trip
// carries every partition the caller needs from this holder. Partitions
// this node does not hold come back as per-entry errors, never as a
// whole-batch failure, so the caller re-batches only the leftovers.
func (n *Node) handlePartials(w http.ResponseWriter, r *http.Request) {
	n.partialsServed.Add(1)
	var req PartialsRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		serve.WriteError(w, fmt.Errorf("%w: %v", query.ErrBadQuery, err))
		return
	}
	n.noteEpoch(req.Epoch)
	// The coordinator's deadline rode along: refuse dead-on-arrival
	// batches instead of scanning partitions nobody waits for.
	if _, err := checkDeadline(req.DeadlineMS); err != nil {
		serve.WriteError(w, err)
		return
	}
	q, err := req.Query.Query()
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	// A traced batch records its side of the work as a detached span
	// tree rooted at this node; the gatherer grafts it under the
	// matching partial_rpc span, stitching one tree across nodes.
	var root *trace.Span
	if req.Trace {
		root = trace.NewSpan("partials", n.id)
	}
	scan := root.Child("local_scan")
	var rowsScanned int64
	resp := PartialsResponse{Node: n.id, Epoch: n.epoch(),
		Partials: make([]PartPartial, 0, len(req.Parts))}
	for _, p := range req.Parts {
		e := PartPartial{Part: p}
		if partial, rowsRead, ok := n.localPartial(p, q); ok {
			e.Partial, e.Rows = partial, rowsRead
			rowsScanned += rowsRead
		} else {
			e.Error = fmt.Sprintf("dist: node %s does not hold partition %d", n.id, p)
		}
		resp.Partials = append(resp.Partials, e)
	}
	scan.End()
	scan.SetAttrInt("parts", int64(len(req.Parts)))
	scan.SetAttrInt("rows", rowsScanned)
	root.End()
	if root != nil {
		resp.Spans = []trace.WireSpan{root.Wire()}
	}
	serve.WriteJSON(w, http.StatusOK, resp)
}

// PartialRPCsServed returns how many partial-state RPCs (batched and
// legacy) this node has answered.
func (n *Node) PartialRPCsServed() int64 { return n.partialsServed.Load() }

// PartialRPCsSent returns how many batched partials round trips this
// node has issued while scatter-gathering.
func (n *Node) PartialRPCsSent() int64 { return n.partialsSent.Load() }

func (n *Node) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	agents := n.pool.Agents()
	resp := SnapshotResponse{Node: n.id, Agents: make([]*core.AgentSnapshot, len(agents))}
	for i, ag := range agents {
		resp.Agents[i] = ag.Snapshot()
	}
	serve.WriteJSON(w, http.StatusOK, resp)
}

func (n *Node) handleCluster(w http.ResponseWriter, _ *http.Request) {
	serve.WriteJSON(w, http.StatusOK, n.Status())
}

func (n *Node) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	serve.WriteMetrics(w, n.pool.Recorder())
}

// DataVersion returns the node's live data version: 1 after the bulk
// load, advanced by every applied ingest batch (including WAL replay).
func (n *Node) DataVersion() int64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.version
}

// cacheVersion is the answer cache's freshness stamp: the highest
// fully-absorbed local data version (advanced once a batch this node
// applies has also reached the agents' models) plus the ingest epoch
// (advanced by every batch it forwards elsewhere). Both only grow, so
// the sum strictly increases on every write this node observes;
// writes it cannot observe are bounded by the cache TTL.
func (n *Node) cacheVersion() int64 {
	return n.absorbedVer.Load() + n.ingestEpoch.Load()
}

// publishAbsorbed raises absorbedVer to ver (monotone max: batches of
// different partitions absorb concurrently and may finish out of
// order).
func (n *Node) publishAbsorbed(ver int64) {
	for {
		cur := n.absorbedVer.Load()
		if ver <= cur || n.absorbedVer.CompareAndSwap(cur, ver) {
			return
		}
	}
}

// Partitions returns the cluster's data-partition count.
func (n *Node) Partitions() int { return n.cfg.Partitions }

// PartitionOwners returns partition p's ring owners (primary first)
// under the current membership view.
func (n *Node) PartitionOwners(p int) []string {
	return n.members().ring.Owners(partKey(p), n.cfg.Replicas)
}

// PartLastSeq returns partition p's last applied ingest sequence (0 if
// nothing was ingested or the node does not hold p).
func (n *Node) PartLastSeq(p int) uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.lastSeq[p]
}

// PartialState evaluates q's mergeable aggregate state over the node's
// local copy of partition p — the bit-exact comparison hook the
// recovery experiments use to prove a replayed replica equals a
// never-killed one. It runs the same (vectorized when available) kernel
// as the serving path, so two replicas holding identical rows produce
// identical states.
func (n *Node) PartialState(p int, q query.Query) ([]float64, bool) {
	partial, _, ok := n.localPartial(p, q)
	return partial, ok
}

// Status reports the node's cluster view: membership with liveness,
// partitions held, and serving health.
func (n *Node) Status() ClusterStatus {
	ms := n.members()
	st := ClusterStatus{
		Node:            n.id,
		Epoch:           ms.view.Epoch,
		Replicas:        n.cfg.Replicas,
		PartitionsTotal: n.cfg.Partitions,
		Agent:           n.pool.Stats(),
		Serving:         n.pool.Recorder().Snapshot(),
	}
	for _, id := range ms.ring.Nodes() {
		url := ms.urls[id]
		m := MemberStatus{ID: id, URL: url, Self: id == n.id, Alive: true}
		if !m.Self {
			m.Alive = n.health.available(url)
		}
		st.Members = append(st.Members, m)
	}
	n.mu.RLock()
	for p := range n.parts {
		st.PartitionsHeld = append(st.PartitionsHeld, p)
	}
	st.RowsHeld = n.rowsHeld
	n.mu.RUnlock()
	sort.Ints(st.PartitionsHeld)
	return st
}

// WarmFrom imports a peer's agent snapshots (GET /v1/snapshot), the
// model-shipping warm-up path for new or recovering replicas: the node
// predicts immediately instead of re-paying its training queries. It
// returns the shipped snapshot size in bytes.
func (n *Node) WarmFrom(peerURL string) (int64, error) {
	resp, err := n.hc.Get(peerURL + "/v1/snapshot")
	if err != nil {
		return 0, fmt.Errorf("dist: warm from %s: %w", peerURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("dist: warm from %s: HTTP %d", peerURL, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, fmt.Errorf("dist: warm from %s: %w", peerURL, err)
	}
	var snap SnapshotResponse
	if err := json.Unmarshal(body, &snap); err != nil {
		return 0, fmt.Errorf("dist: warm from %s: %w", peerURL, err)
	}
	agents := n.pool.Agents()
	for i, ag := range agents {
		if i >= len(snap.Agents) || snap.Agents[i] == nil {
			break
		}
		if err := ag.Restore(snap.Agents[i]); err != nil {
			return int64(len(body)), fmt.Errorf("dist: warm agent %d from %s: %w", i, peerURL, err)
		}
	}
	return int64(len(body)), nil
}
