package dist

import (
	"reflect"
	"strconv"
	"testing"
)

func TestRingOwnersDeterministicAndDistinct(t *testing.T) {
	r := NewRing(0, "n0", "n1", "n2")
	for i := 0; i < 50; i++ {
		key := "key-" + strconv.Itoa(i)
		owners := r.Owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("key %s: %d owners, want 2", key, len(owners))
		}
		if owners[0] == owners[1] {
			t.Fatalf("key %s: duplicate owner %s", key, owners[0])
		}
		if got := r.Owners(key, 2); !reflect.DeepEqual(got, owners) {
			t.Fatalf("key %s: owners not deterministic: %v vs %v", key, got, owners)
		}
	}
	// Replication clamps to the member count.
	if got := r.Owners("k", 5); len(got) != 3 {
		t.Errorf("Owners(k, 5) on 3 nodes = %v, want all 3", got)
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r := NewRing(0, "n0", "n1", "n2", "n3")
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[r.Primary("key-"+strconv.Itoa(i))]++
	}
	for _, id := range r.Nodes() {
		if counts[id] < 400 {
			t.Errorf("node %s owns only %d/4000 keys (skew too high)", id, counts[id])
		}
	}
}

func TestRingRemoveRemapsOnlyLostKeys(t *testing.T) {
	r := NewRing(0, "n0", "n1", "n2")
	before := map[string]string{}
	for i := 0; i < 1000; i++ {
		k := "key-" + strconv.Itoa(i)
		before[k] = r.Primary(k)
	}
	r.Remove("n1")
	for k, owner := range before {
		got := r.Primary(k)
		if got == "n1" {
			t.Fatalf("removed node still owns %s", k)
		}
		if owner != "n1" && got != owner {
			t.Errorf("key %s moved from surviving node %s to %s", k, owner, got)
		}
	}
	// All nodes agree: a second ring with the same members is identical.
	r2 := NewRing(0, "n2", "n0")
	for i := 0; i < 100; i++ {
		k := "key-" + strconv.Itoa(i)
		if r.Primary(k) != r2.Primary(k) {
			t.Fatalf("rings with equal membership disagree on %s", k)
		}
	}
}
