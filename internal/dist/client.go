package dist

import (
	"bytes"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/storage"
)

// Client is a ring-aware cluster client: it routes each query to the
// key's ring owners (so it lands on the node whose agents learned that
// query region) and fails over to the next replica — and then to any
// other member — when a node is unreachable. One node dying mid-stream
// is therefore invisible to callers: the request is retried elsewhere,
// not surfaced as an error. Once every candidate has been tried, the
// client re-walks the list under a bounded retry budget with
// exponential backoff + jitter (transient storms heal in milliseconds;
// a hard outage still fails fast once the budget is spent). Per-peer
// circuit breakers shed calls to members failing at a sustained rate
// even when they still answer /healthz.
//
// The client is membership-aware: every node response carries the
// membership epoch it was served under, and a response from a NEWER
// epoch than the client knows triggers a synchronous refresh (GET
// /v1/membership) that rebuilds the ring and URL table — evicting
// departed members so they stop receiving RPCs, and admitting joiners
// so routing follows the new placement. The ring and URL map are
// treated as immutable snapshots behind mu, so in-flight requests keep
// a consistent view while a refresh swaps in the next one.
type Client struct {
	mu       sync.RWMutex // guards ring, urls, epoch
	ring     *Ring
	urls     map[string]string
	epoch    int64
	vnodes   int
	replicas int

	refreshMu sync.Mutex // single-flight for refresh()

	hc      *http.Client
	health  *health
	budget  int
	backoff time.Duration
	// Tenant is sent with every query for the nodes' admission control
	// (empty = shared default tenant).
	Tenant string
}

// NewClient builds a client over the cluster members (id -> base URL).
// replicas and timeout <= 0 take the defaults; the vnode count must
// match the cluster's (use NewClientVNodes otherwise).
func NewClient(members map[string]string, replicas int, timeout time.Duration) *Client {
	return NewClientVNodes(members, replicas, timeout, 0)
}

// NewClientVNodes is NewClient with an explicit ring vnode count.
func NewClientVNodes(members map[string]string, replicas int, timeout time.Duration, vnodes int) *Client {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	ids := make([]string, 0, len(members))
	urls := make(map[string]string, len(members))
	for id, url := range members {
		ids = append(ids, id)
		urls[id] = url
	}
	ring := NewRing(vnodes, ids...)
	return &Client{
		ring: ring,
		urls: urls,
		// A freshly booted static cluster is at epoch 1 (viewFromPeers),
		// so start there: the first response only triggers a refresh if
		// the cluster has actually changed since construction.
		epoch:    1,
		vnodes:   ring.VNodes(),
		replicas: replicas,
		hc:       newHTTPClient(timeout, nil),
		health:   newHealth(DefaultCooldown, timeout, breakerConfig{}),
		budget:   DefaultRetryBudget,
		backoff:  DefaultRetryBackoff,
	}
}

// snapshot returns the current ring and URL table. Both are immutable
// once published (refresh swaps whole values), so callers may read them
// without further locking.
func (c *Client) snapshot() (*Ring, map[string]string) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring, c.urls
}

// Epoch returns the newest membership epoch the client has adopted.
func (c *Client) Epoch() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epoch
}

// noteEpoch records a membership epoch observed in a node response and
// refreshes the client's view if it is newer than what we route by.
// The refresh is synchronous: by the time the caller's NEXT request
// goes out, routing already reflects the new membership, so a departed
// node receives no further RPCs from this client.
func (c *Client) noteEpoch(e int64) {
	if e <= 0 {
		return
	}
	c.mu.RLock()
	known := c.epoch
	c.mu.RUnlock()
	if e <= known {
		return
	}
	c.refresh(e)
}

// refresh pulls /v1/membership from the members we currently know,
// adopts the highest-epoch view seen, and rebuilds the ring + URL
// table from it. Single-flight: concurrent observers of the same new
// epoch collapse into one round of fetches.
func (c *Client) refresh(target int64) {
	c.refreshMu.Lock()
	defer c.refreshMu.Unlock()
	c.mu.RLock()
	if c.epoch >= target {
		c.mu.RUnlock()
		return // another caller already got us there
	}
	urls := c.urls
	c.mu.RUnlock()
	var best MembershipResponse
	for _, url := range urls {
		if url == "" || !c.health.available(url) {
			continue
		}
		mr, err := fetchMembership(c.hc, url)
		if err != nil {
			c.health.observe(url, err)
			continue
		}
		c.health.observe(url, nil)
		if mr.View.Epoch > best.View.Epoch {
			best = mr
		}
		if best.View.Epoch >= target {
			break // already as new as the epoch that triggered us
		}
	}
	if best.View.Epoch == 0 {
		return // nobody reachable; keep routing by the old view
	}
	ids := make([]string, 0, len(best.View.Members))
	nurls := make(map[string]string, len(best.View.Members))
	for _, m := range best.View.Members {
		ids = append(ids, m.ID)
		nurls[m.ID] = m.URL
	}
	c.mu.Lock()
	if best.View.Epoch > c.epoch {
		c.ring = NewRing(c.vnodes, ids...)
		c.urls = nurls
		c.epoch = best.View.Epoch
	}
	c.mu.Unlock()
}

// Answer routes q to its ring owners and returns the cluster's answer.
func (c *Client) Answer(q query.Query) (core.Answer, error) {
	resp, err := c.answer(q)
	if err != nil {
		return core.Answer{}, err
	}
	return resp.Answer(), nil
}

// AnswerNode additionally reports which member produced the answer.
func (c *Client) AnswerNode(q query.Query) (core.Answer, string, error) {
	resp, err := c.answer(q)
	if err != nil {
		return core.Answer{}, "", err
	}
	return resp.Answer(), resp.Node, nil
}

// retryLoop drives walk — one full pass over the candidate list —
// until it reports done, or the retry budget is exhausted, or the
// deadline passes. Between passes the loop backs off exponentially
// with up to +100% uniform jitter, clamped to the remaining deadline.
func (c *Client) retryLoop(deadline time.Time, walk func() bool) {
	backoff := c.backoff
	for retries := 0; ; retries++ {
		if walk() {
			return
		}
		if retries >= c.budget {
			return
		}
		d := backoff + time.Duration(rand.Int64N(int64(backoff)))
		if !deadline.IsZero() {
			left := time.Until(deadline)
			if left <= 0 {
				return
			}
			if d > left {
				d = left
			}
		}
		time.Sleep(d)
		backoff *= 2
	}
}

func (c *Client) answer(q query.Query) (QueryResponse, error) {
	if err := q.Validate(); err != nil {
		return QueryResponse{}, err
	}
	body, err := json.Marshal(queryToWire(q, c.Tenant))
	if err != nil {
		return QueryResponse{}, err
	}
	key := serve.Key(q)
	var out QueryResponse
	var lastErr, terminalErr error
	ok := false
	c.retryLoop(q.Deadline, func() bool {
		// Re-snapshot each pass: a refresh between passes re-routes the
		// retry to the current members.
		ring, urls := c.snapshot()
		for _, id := range c.candidates(ring, key) {
			url := urls[id]
			if url == "" || !c.health.available(url) {
				continue
			}
			resp, err := c.hc.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
			if err != nil {
				lastErr = err
				c.health.observe(url, err)
				continue
			}
			r, retryable, err := decodeAnswer(resp)
			if err == nil {
				c.health.observe(url, nil)
				c.noteEpoch(r.Epoch)
				out, ok = r, true
				return true
			}
			// The node responded, so it is alive — retry elsewhere for
			// retryable failures but do not quarantine it. Server-side
			// failures still count toward its breaker.
			lastErr = err
			if resp.StatusCode >= 500 {
				c.health.observe(url, fmt.Errorf("%w: %v", errPeerResponded, err))
			} else {
				c.health.observe(url, nil)
			}
			if !retryable {
				terminalErr = err
				return true
			}
		}
		return false
	})
	if ok {
		return out, nil
	}
	if terminalErr != nil {
		return QueryResponse{}, terminalErr
	}
	return QueryResponse{}, errAllReplicas("query "+key, lastErr)
}

// candidates lists the key's ring owners first, then every other member:
// owners for model locality, the rest as degraded-mode fallbacks (any
// node can answer by scatter-gathering).
func (c *Client) candidates(ring *Ring, key string) []string {
	owners := ring.Owners(key, c.replicas)
	isOwner := make(map[string]bool, len(owners))
	for _, o := range owners {
		isOwner[o] = true
	}
	out := owners
	for _, id := range ring.Nodes() {
		if !isOwner[id] {
			out = append(out, id)
		}
	}
	return out
}

// decodeAnswer parses one node response. retryable reports whether the
// failure is worth trying on another replica (overload and server-side
// failures are; malformed-query rejections and dead-on-arrival 504s
// are not — a retried dead request arrives even deader). The body is
// always drained so the keep-alive connection is reusable.
func decodeAnswer(resp *http.Response) (QueryResponse, bool, error) {
	defer drainClose(resp.Body)
	if resp.StatusCode == http.StatusOK {
		var out QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return QueryResponse{}, true, err
		}
		return out, false, nil
	}
	var e struct {
		Error string `json:"error"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&e)
	err := fmt.Errorf("dist: HTTP %d: %s", resp.StatusCode, e.Error)
	retryable := (resp.StatusCode >= 500 && resp.StatusCode != http.StatusGatewayTimeout) ||
		resp.StatusCode == http.StatusTooManyRequests
	return QueryResponse{}, retryable, err
}

// newIdemKey mints a batch idempotency key: 16 random bytes, hex.
func newIdemKey() string {
	var b [16]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Fall back to a time-derived key: uniqueness only has to hold
		// across this client's recent batches.
		return fmt.Sprintf("t-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Ingest appends a batch of rows through the cluster's replicated write
// path (POST /v1/ingest). The entry node routes each row's partition
// batch to its primary, which sequences it, replicates it to the ring
// owners and acks at the write quorum; the response reports per-
// partition outcomes. A transport error fails over to the next member;
// every attempt of one batch carries the same idempotency key, so a
// primary that already applied the batch replays its stored outcome
// instead of double-applying the rows. Per-partition quorum failures
// are NOT retried here: they come back in the response as unacked
// parts for the caller to decide about.
func (c *Client) Ingest(rows []storage.Row) (IngestResponse, error) {
	if len(rows) == 0 {
		return IngestResponse{}, fmt.Errorf("dist: ingest needs rows")
	}
	body, err := json.Marshal(IngestRequest{Rows: rowsToWire(rows), IdemKey: newIdemKey()})
	if err != nil {
		return IngestResponse{}, err
	}
	var out IngestResponse
	var lastErr error
	ok := false
	c.retryLoop(time.Time{}, func() bool {
		ring, urls := c.snapshot()
		for _, id := range ring.Nodes() {
			url := urls[id]
			if url == "" || !c.health.available(url) {
				continue
			}
			resp, err := c.hc.Post(url+"/v1/ingest", "application/json", bytes.NewReader(body))
			if err != nil {
				lastErr = err
				c.health.observe(url, err)
				continue
			}
			var r IngestResponse
			derr := json.NewDecoder(resp.Body).Decode(&r)
			code := resp.StatusCode
			drainClose(resp.Body)
			if code != http.StatusOK {
				lastErr = fmt.Errorf("dist: ingest via %s: HTTP %d", id, code)
				if code >= 500 {
					c.health.observe(url, fmt.Errorf("%w: %v", errPeerResponded, lastErr))
				} else {
					c.health.observe(url, nil)
				}
				if code == http.StatusBadRequest {
					return true
				}
				continue
			}
			if derr != nil {
				lastErr = derr
				c.health.observe(url, nil)
				continue
			}
			c.health.observe(url, nil)
			c.noteEpoch(r.Epoch)
			out, ok = r, true
			return true
		}
		return false
	})
	if ok {
		return out, nil
	}
	return IngestResponse{}, errAllReplicas("ingest", lastErr)
}

// Status fetches a member's cluster view (GET /v1/cluster), trying every
// member until one responds.
func (c *Client) Status() (ClusterStatus, error) {
	var lastErr error
	ring, urls := c.snapshot()
	for _, id := range ring.Nodes() {
		url := urls[id]
		if url == "" || !c.health.available(url) {
			continue
		}
		resp, err := c.hc.Get(url + "/v1/cluster")
		if err != nil {
			lastErr = err
			c.health.observe(url, err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			drainClose(resp.Body)
			lastErr = fmt.Errorf("dist: cluster status from %s: HTTP %d", url, resp.StatusCode)
			c.health.observe(url, fmt.Errorf("%w: %v", errPeerResponded, lastErr))
			continue
		}
		var st ClusterStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		drainClose(resp.Body)
		if err != nil {
			lastErr = err
			c.health.observe(url, nil)
			continue
		}
		c.health.observe(url, nil)
		c.noteEpoch(st.Epoch)
		return st, nil
	}
	return ClusterStatus{}, errAllReplicas("cluster status", lastErr)
}
