// Package dist is the distributed serving cluster: a process-level,
// HTTP/JSON node-to-node scale-out of the concurrent serving layer
// (internal/serve). It turns the repo from "a concurrent server" into
// "a cluster" (Fig. 3: SEA agents at core and edge nodes):
//
//   - A consistent-hash Ring partitions both the query space (by the
//     canonical query key from serve.Key) and the data partitions
//     ("part:<i>" keys) across N nodes with R-way replication.
//
//   - Each Node holds the data partitions the ring assigns it and runs
//     its own agent pool (serve.Pool + serve.Scheduler) over them, so
//     model predictions are node-local and the serving capacity scales
//     with the node count.
//
//   - Queries that need the exact path span shards: the owning node
//     scatter-gathers per-partition aggregate states from the partition
//     holders and merges them with the distributable kernels in
//     internal/query (COUNT/SUM merge exactly; AVG/VAR/CORR merge from
//     per-shard moments).
//
//   - Replica failover: clients and forwarding nodes try a key's ring
//     owners in order, skipping nodes that recently failed (recovery is
//     probed through /healthz); the scatter path does the same per data
//     partition, so one dead node is masked by its replicas with no
//     client-visible errors.
//
//   - Model shipping: a new or recovering replica warms up by importing
//     a peer's agent snapshot (core.AgentSnapshot over GET /v1/snapshot)
//     instead of re-paying its training queries — the real-system
//     analogue of internal/polystore's ship-model strategy.
//
// Node-to-node API (all JSON):
//
//	POST /v1/query     client-facing query; non-owners forward to owners
//	POST /v1/ingest    client-facing row batches (replicated, quorum-
//	                   acked, WAL-durable live write path)
//	POST /v1/replicate primary-to-replica sequenced batch shipping
//	POST /v1/walfetch  log-tail fetch for recovering replicas
//	POST /v1/partial   per-partition aggregate state for scatter-gather
//	GET  /v1/snapshot  agent snapshots for model shipping
//	GET  /v1/cluster   membership, partitions held, serving health
//	GET  /v1/membership  the node's current membership view (epoch +
//	                   members); POST installs a newer view (gossip)
//	POST /v1/join      add a member: recompute placement, stage moving
//	                   partitions on their gainers, cut the epoch over
//	POST /v1/leave     retire a member gracefully (drain + rebalance)
//	POST /v1/migrate   coordinator→gainer: stage listed partitions from
//	                   donor holders (snapshot + WAL-tail catch-up)
//	POST /v1/partsnap  one partition's full row snapshot for staging
//	POST /v1/digest    per-partition Merkle-style content digest for
//	                   anti-entropy comparison
//	GET  /v1/rebalance rebalance/repair progress (epoch, staged parts,
//	                   retired parts, anti-entropy counters)
//	GET  /v1/status    versioned introspection snapshot: ring view,
//	                   per-partition replication lag, drift, cache,
//	                   scheduler, audit and SLO state
//	GET  /v1/debug/cluster  fans out /v1/status to every member and
//	                   cross-checks the snapshots into health findings
//	GET  /v1/history   flight-recorder metric replay (?metric=&window=)
//	GET  /v1/debug/bundles  triggered diagnostic-bundle spool listing;
//	                   /v1/debug/bundle/{id}/{file} fetches one member
//	GET  /v1/metrics   Prometheus text exposition
//	GET  /healthz      liveness (failover probing)
//
// cmd/seaserve exposes a node via -node-id/-peers/-replicas; E14
// (internal/experiments) measures scale-out QPS, cross-shard latency and
// failover recovery on an in-process LocalCluster.
package dist

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Defaults for Config's zero values.
const (
	DefaultReplicas = 2
	DefaultTimeout  = 2 * time.Second
	DefaultCooldown = 2 * time.Second
	// DefaultAnswerCache is the per-node answer-cache capacity.
	DefaultAnswerCache = 4096
	// DefaultAnswerCacheTTL bounds a cached answer's age. The version
	// stamp invalidates instantly for every write this node observes
	// (applied or forwarded ingest); the TTL bounds staleness for
	// writes that land entirely on other members.
	DefaultAnswerCacheTTL = 500 * time.Millisecond
	// DefaultGatherFanout bounds the scatter-gather worker pool.
	DefaultGatherFanout = 8
	// DefaultRetryBudget is the per-query RPC retry allowance.
	DefaultRetryBudget = 3
	// DefaultRetryBackoff is the base delay before the first retry.
	DefaultRetryBackoff = 10 * time.Millisecond
	// DefaultHedgeQuantile is the partials-latency quantile after which
	// a scatter RPC is hedged to a second holder.
	DefaultHedgeQuantile = 0.95
	// walFetchMaxDefault caps how many WAL entries one /v1/walfetch
	// response carries when the request does not bound the batch
	// itself; callers loop on Truncated.
	walFetchMaxDefault = 512
)

// ErrAllReplicasFailed is returned when every ring owner of a key (or
// every holder of a data partition) is unreachable.
var ErrAllReplicasFailed = errors.New("dist: all replicas failed")

// Config describes one cluster node.
type Config struct {
	// ID is this node's unique member id (e.g. "n0").
	ID string
	// Peers maps every member id (including this node's) to its base
	// URL, e.g. "n1" -> "http://10.0.0.2:8080". All members must share
	// the same map so their rings agree.
	Peers map[string]string
	// Replicas is the R-way replication factor for both query ownership
	// and data partitions (default DefaultReplicas, clamped to the
	// member count).
	Replicas int
	// Partitions is the data-partition count (default 2x members).
	Partitions int
	// VNodes is the ring's virtual-node count per member (default
	// DefaultVNodes).
	VNodes int
	// Agents is the node's agent-pool size (default 1).
	Agents int
	// Agent configures each agent (zero value takes core.DefaultConfig
	// for 2 dims).
	Agent core.Config
	// Workers/QueueDepth/TenantInflight size the node's scheduler (zero
	// values take serve's defaults; TenantInflight < 0 disables).
	Workers        int
	QueueDepth     int
	TenantInflight int
	// ServiceDelay, when positive, is paced for real inside a scheduler
	// worker for every locally-answered query: it models the per-node
	// service time (storage, NIC) a real deployment pays but an
	// in-process simulation cannot charge to host CPU. It bounds one
	// node's throughput at Workers/ServiceDelay, which is what makes
	// scale-out measurable on small hosts (E14). Zero disables pacing.
	ServiceDelay time.Duration
	// DataDir, when set, enables WAL durability for the live write
	// path: every owned data partition appends its sequenced ingest
	// batches to a write-ahead log under DataDir/part-<i>, and Load
	// replays those segments on restart so acknowledged writes survive
	// a crash. Empty disables durability (ingest is memory-only).
	DataDir string
	// WriteQuorum is how many ring owners must apply an ingest batch
	// before it is acknowledged (default: a majority of Replicas;
	// clamped to [1, Replicas]).
	WriteQuorum int
	// WALSyncEvery batches WAL fsyncs: the log fsyncs after every N
	// appended batches (default 1 — every acknowledged batch is
	// durable; larger values trade a bounded loss window for
	// throughput).
	WALSyncEvery int
	// AnswerCache sizes the node's versioned answer cache (entries):
	// answered queries are cached by canonical key and data version, so
	// repeated queries are served without touching the agents, and every
	// applied ingest batch invalidates affected entries through the
	// version stamp. 0 takes DefaultAnswerCache; negative disables.
	AnswerCache int
	// AnswerCacheTTL bounds a cached answer's age, covering writes
	// this node never observes (they can land entirely on remote
	// partition holders). 0 takes DefaultAnswerCacheTTL; negative
	// disables age expiry.
	AnswerCacheTTL time.Duration
	// GatherFanout bounds the scatter-gather worker pool: at most this
	// many concurrent local partition evaluations and per-holder batched
	// partial RPCs per query (default DefaultGatherFanout).
	GatherFanout int
	// RequantCheck, when positive, runs a background drift maintainer
	// per pooled agent: recently served queries are recorded, and when
	// ingest pressure outgrows the incremental maintenance path
	// (unattributed drift or sustained invalidations) the agent is
	// re-quantised in the background and swapped in without blocking
	// reads. Zero disables background re-quantisation.
	RequantCheck time.Duration
	// Timeout bounds each node-to-node HTTP call (default
	// DefaultTimeout).
	Timeout time.Duration
	// Cooldown is how long a peer stays suspected-down after a failed
	// call before /healthz probing may reinstate it (default
	// DefaultCooldown).
	Cooldown time.Duration
	// TraceSample is the background trace-sampling fraction: roughly
	// this share of served queries records a full span tree into the
	// node's trace ring (GET /v1/debug/trace/<id>). 0 disables
	// background sampling; ?trace=1 requests are always traced.
	TraceSample float64
	// TraceRing bounds how many finished traces the node retains
	// (default trace.DefaultRing).
	TraceRing int
	// SlowQuery, when positive, logs every query slower than this
	// threshold into the slow-query ring (GET /v1/debug/slow).
	SlowQuery time.Duration
	// AuditSample is the shadow-audit fraction: roughly this share of
	// model-served answers is re-evaluated exactly in the background and
	// the predicted-vs-truth relative error recorded into the accuracy
	// audit histograms. 0 disables shadow auditing (exact-fallback
	// audits are always on — they are free).
	AuditSample float64
	// Logger, when set, receives the node's structured JSON log lines
	// (replication healing, catch-up, forward failovers, slow queries).
	// Nil keeps the node silent — every logging site is nil-safe and
	// costs one pointer compare.
	Logger *obs.Logger
	// SLO, when set, runs a per-tenant-class burn-rate engine over the
	// node's latency/admission histograms; states are exported on
	// /v1/metrics and surfaced in /v1/status. Nil disables.
	SLO *metrics.SLOConfig
	// RuntimeSample, when positive, runs the background runtime
	// telemetry sampler at this period. Zero still registers the
	// runtime gauges but samples only on demand (status requests).
	RuntimeSample time.Duration
	// LagThreshold is the replication shortfall (in ingest sequences)
	// at which the cluster aggregator escalates a lagging replica from
	// warn to critical (default 1: any lag is critical).
	LagThreshold uint64
	// Pprof mounts net/http/pprof profiling handlers on the node's mux
	// under /debug/pprof/ (off by default: profiling endpoints on a
	// data port are an operator opt-in).
	Pprof bool
	// Flight enables the flight recorder: per-series metric history
	// rings (GET /v1/history), anomaly detection over watched series,
	// and triggered diagnostic bundles (GET /v1/debug/bundles).
	Flight bool
	// FlightSample is the hi-res sampling period (0 defaults to 1s).
	// Negative leaves the background sampler unstarted so tests and
	// experiments drive flight ticks from a synthetic clock.
	FlightSample time.Duration
	// FlightSpool overrides the diagnostic-bundle spool root (default:
	// DataDir/flight, or the OS temp dir without a DataDir). Each
	// member spools under its own node-id subdirectory.
	FlightSpool string
	// Anomaly arms the flight recorder's robust z-score detector.
	Anomaly bool
	// RetryBudget is how many retry attempts (beyond the first try of
	// each candidate) one query's RPC layer may spend across all of its
	// scatter/failover calls, with exponential backoff + jitter between
	// attempts. 0 takes DefaultRetryBudget; negative disables retries.
	RetryBudget int
	// RetryBackoff is the base backoff before the first retry; each
	// subsequent retry doubles it (jittered, clamped to the remaining
	// deadline). 0 takes DefaultRetryBackoff.
	RetryBackoff time.Duration
	// HedgeQuantile picks the scatter hedging delay: when a batched
	// /v1/partials RPC is still unanswered after this quantile of the
	// node's observed partials latency, a second copy is fired at the
	// next replica holder and the first answer wins. 0 takes
	// DefaultHedgeQuantile; negative disables hedging.
	HedgeQuantile float64
	// BreakerMinVolume / BreakerFailureRate / BreakerOpenFor tune the
	// per-peer circuit breakers (defaults: 8 calls, 0.5, Cooldown).
	// BreakerFailureRate < 0 keeps breakers permanently closed.
	BreakerMinVolume   int64
	BreakerFailureRate float64
	BreakerOpenFor     time.Duration
	// NoDegrade disables graceful degradation: with it set, a query
	// whose partition holders are all unreachable fails with
	// ErrAllReplicasFailed instead of returning a degraded partial-
	// coverage answer.
	NoDegrade bool
	// InitialView, when set, is the membership view the node boots
	// with instead of deriving an epoch-1 view from Peers. A joiner
	// fetches a live member's view (FetchMembership) and passes it
	// here, so it boots already knowing the pre-join cluster and the
	// shared partition count.
	InitialView *View
	// AntiEntropy, when positive, runs the background replica-repair
	// loop at this cadence: each tick the node digests the partitions
	// it replicates, compares against the partition primary, and heals
	// any divergence via snapshot ship + WAL-tail catch-up. Negative
	// arms the machinery without the background loop (tests drive
	// AntiEntropyTick manually). Zero disarms it entirely — a tick is
	// then a single atomic load, which is the zero-allocation guarantee
	// the CI bench grep pins.
	AntiEntropy time.Duration
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.Partitions <= 0 {
		c.Partitions = 2 * len(c.Peers)
		if c.Partitions == 0 {
			c.Partitions = 2
		}
	}
	if c.Agents <= 0 {
		c.Agents = 1
	}
	if c.Agent.Dims < 1 {
		c.Agent = core.DefaultConfig(2)
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultCooldown
	}
	if c.WriteQuorum <= 0 {
		c.WriteQuorum = c.Replicas/2 + 1
	}
	if c.WriteQuorum > c.Replicas {
		c.WriteQuorum = c.Replicas
	}
	if c.AnswerCache == 0 {
		c.AnswerCache = DefaultAnswerCache
	}
	if c.AnswerCacheTTL == 0 {
		c.AnswerCacheTTL = DefaultAnswerCacheTTL
	}
	if c.GatherFanout <= 0 {
		c.GatherFanout = DefaultGatherFanout
	}
	if c.LagThreshold == 0 {
		c.LagThreshold = 1
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = DefaultRetryBudget
	}
	if c.RetryBudget < 0 {
		c.RetryBudget = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	if c.HedgeQuantile == 0 {
		c.HedgeQuantile = DefaultHedgeQuantile
	}
	if c.BreakerOpenFor <= 0 {
		c.BreakerOpenFor = c.Cooldown
	}
	return c
}

// breakerCfg maps the Config knobs onto the breaker tunables. A
// negative BreakerFailureRate yields a rate above 1 — unreachable, so
// breakers never open.
func (c Config) breakerCfg() breakerConfig {
	rate := c.BreakerFailureRate
	if rate < 0 {
		rate = 2
	}
	return breakerConfig{
		minVolume:   c.BreakerMinVolume,
		failureRate: rate,
		openFor:     c.BreakerOpenFor,
	}
}

// newHTTPClient builds the node-to-node/client HTTP client: generous
// per-host connection pooling (the default of 2 idle conns per host
// forces a TCP handshake on most requests under concurrent serving;
// MaxIdleConnsPerHost comfortably exceeds any sane replication factor),
// TCP keep-alives, and explicit dial/response-header deadlines so a
// wedged peer costs at most the configured timeout instead of hanging a
// scatter worker.
// The transport is wrapped with the node's chaos fault interceptor:
// with no rules armed the wrapper costs one atomic load per request.
func newHTTPClient(timeout time.Duration, fault *chaos.Fault) *http.Client {
	dialer := &net.Dialer{
		Timeout:   timeout,
		KeepAlive: 30 * time.Second,
	}
	var rt http.RoundTripper = &http.Transport{
		DialContext:           dialer.DialContext,
		MaxIdleConns:          256,
		MaxIdleConnsPerHost:   64,
		IdleConnTimeout:       90 * time.Second,
		ResponseHeaderTimeout: timeout,
		ExpectContinueTimeout: time.Second,
	}
	if fault != nil {
		rt = &chaos.Transport{Base: rt, F: fault}
	}
	return &http.Client{Timeout: timeout, Transport: rt}
}

// drainClose drains (bounded) and closes an HTTP response body. On
// error and retry paths the body must be read to EOF before Close or
// the keep-alive connection is torn down instead of reused — under an
// error storm that converts every retry into a fresh TCP handshake.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 256<<10))
	body.Close()
}

// deadlineMS converts a query deadline to its wire form (absolute Unix
// milliseconds; 0 = none).
func deadlineMS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMilli()
}

// checkDeadline maps a wire deadline back to a query deadline and
// reports dead-on-arrival requests: callers refuse those with
// serve.ErrDeadline instead of computing answers nobody reads.
func checkDeadline(ms int64) (time.Time, error) {
	if ms <= 0 {
		return time.Time{}, nil
	}
	dl := time.UnixMilli(ms)
	if !time.Now().Before(dl) {
		return dl, serve.ErrDeadline
	}
	return dl, nil
}

// partKey is the ring key for data partition p.
func partKey(p int) string { return "part:" + strconv.Itoa(p) }

// queryToWire converts an internal query to the serving wire form
// (the inverse of serve.QueryRequest.Query).
func queryToWire(q query.Query, tenant string) serve.QueryRequest {
	req := serve.QueryRequest{
		Tenant: tenant,
		Agg:    q.Aggregate.String(), // ParseAgg lowercases, so String() round-trips
		Col:    q.Col,
		Col2:   q.Col2,
	}
	if q.Select.IsRadius() {
		req.Center, req.Radius = q.Select.Center, q.Select.Radius
	} else {
		req.Los, req.His = q.Select.Los, q.Select.His
	}
	req.DeadlineMS = deadlineMS(q.Deadline)
	return req
}

// costFromJSON rebuilds the virtual cost from its wire form.
func costFromJSON(c serve.CostJSON) metrics.Cost {
	return metrics.Cost{
		Time:         time.Duration(c.TimeNS),
		CPUTime:      time.Duration(c.CPUNS),
		RowsRead:     c.RowsRead,
		BytesLAN:     c.BytesLAN,
		NodesTouched: c.Nodes,
	}
}

// QueryResponse is the cluster's answer wire form: the serving layer's
// response plus which node answered it.
type QueryResponse struct {
	serve.QueryResponse
	// Node is the member that produced the answer.
	Node string `json:"node"`
	// Epoch is the answering node's membership epoch: a client seeing
	// an epoch newer than its own refetches the membership view and
	// re-resolves owners instead of routing on a stale ring.
	Epoch int64 `json:"epoch,omitempty"`
}

// Answer converts the wire response to the agent's answer type.
func (r QueryResponse) Answer() core.Answer {
	return core.Answer{
		Value:     r.Value,
		Predicted: r.Predicted,
		EstError:  r.EstError,
		Quantum:   r.Quantum,
		FreshRows: r.StaleRows,
		Cost:      costFromJSON(r.Cost),
		Degraded:  r.Degraded,
		Coverage:  r.Coverage,
	}
}

// PartialRequest asks a node for its local aggregate state of one data
// partition.
type PartialRequest struct {
	Part  int                `json:"part"`
	Query serve.QueryRequest `json:"query"`
	// Trace asks the holder to record a span tree for its side of the
	// work and return it in PartialResponse.Spans, so a traced query's
	// tree stitches across node boundaries.
	Trace bool `json:"trace,omitempty"`
}

// PartialResponse carries one partition's mergeable aggregate state (see
// query.PartialEval).
type PartialResponse struct {
	Partial []float64 `json:"partial"`
	// Rows is how many base rows the partition scan touched.
	Rows int64 `json:"rows"`
	// Spans is the holder's span tree for this request (only when the
	// request asked for a trace).
	Spans []trace.WireSpan `json:"spans,omitempty"`
}

// PartialsRequest asks a holder for its local aggregate states of many
// data partitions in one round trip — the batched successor of
// PartialRequest (POST /v1/partial stays mounted for wire back-compat).
// Grouping a query's missing partitions per holder turns the exact
// fallback's fan-out from one RPC per partition into one RPC per
// holder.
type PartialsRequest struct {
	Parts []int              `json:"parts"`
	Query serve.QueryRequest `json:"query"`
	// Trace asks the holder to record a span tree for its side of the
	// batch and return it in PartialsResponse.Spans.
	Trace bool `json:"trace,omitempty"`
	// DeadlineMS propagates the coordinator's absolute deadline (Unix
	// milliseconds; 0 = none): holders refuse dead-on-arrival batches
	// with HTTP 504 instead of scanning partitions nobody waits for.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Epoch is the caller's membership epoch (stale holders refetch).
	Epoch int64 `json:"epoch,omitempty"`
}

// PartPartial is one partition's outcome within a batched partials
// response. A holder that does not hold the partition reports it in
// Error instead of failing the whole batch, so the caller re-batches
// just the leftovers to the next replica.
type PartPartial struct {
	Part    int       `json:"part"`
	Partial []float64 `json:"partial,omitempty"`
	Rows    int64     `json:"rows"`
	Error   string    `json:"error,omitempty"`
}

// PartialsResponse carries the per-partition aggregate states of one
// batched POST /v1/partials round trip.
type PartialsResponse struct {
	Node     string        `json:"node"`
	Partials []PartPartial `json:"partials"`
	// Spans is the holder's span tree for this batch (only when the
	// request asked for a trace); the gatherer grafts it under its
	// partial_rpc span.
	Spans []trace.WireSpan `json:"spans,omitempty"`
	// Epoch is the holder's membership epoch.
	Epoch int64 `json:"epoch,omitempty"`
}

// SnapshotResponse ships a node's agent states for replica warm-up.
type SnapshotResponse struct {
	Node   string                `json:"node"`
	Agents []*core.AgentSnapshot `json:"agents"`
}

// MemberStatus is one member's view in ClusterStatus.
type MemberStatus struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	Self  bool   `json:"self"`
	Alive bool   `json:"alive"`
}

// ClusterStatus is the GET /v1/cluster body.
type ClusterStatus struct {
	Node            string                `json:"node"`
	Epoch           int64                 `json:"epoch"`
	Replicas        int                   `json:"replicas"`
	Members         []MemberStatus        `json:"members"`
	PartitionsHeld  []int                 `json:"partitions_held"`
	PartitionsTotal int                   `json:"partitions_total"`
	RowsHeld        int64                 `json:"rows_held"`
	Agent           core.Stats            `json:"agent"`
	Serving         metrics.ServeSnapshot `json:"serving"`
}

func errAllReplicas(what string, last error) error {
	if last == nil {
		return fmt.Errorf("%w: %s", ErrAllReplicasFailed, what)
	}
	return fmt.Errorf("%w: %s: last error: %v", ErrAllReplicasFailed, what, last)
}

// WireRow is one ingested record on the wire.
type WireRow struct {
	Key uint64    `json:"key"`
	Vec []float64 `json:"vec"`
}

// IngestRequest is the POST /v1/ingest body: a batch of rows to append
// through the replicated write path. Rows are routed to their
// partitions by key hash; each partition's batch is sequenced by the
// partition's primary and replicated to the ring owners.
type IngestRequest struct {
	Rows []WireRow `json:"rows"`
	// Trace asks the ingest path to record a span tree (wal_append,
	// absorb, replicate fan-out) and return it in IngestResponse.Spans.
	Trace bool `json:"trace,omitempty"`
	// IdemKey is a client-chosen idempotency key for the batch: a
	// primary remembers recently applied (key, partition) outcomes and
	// replays the stored result instead of re-applying the rows, so a
	// client retrying a broken connection cannot double-ingest. Empty
	// disables deduplication.
	IdemKey string `json:"idem_key,omitempty"`
	// DeadlineMS propagates the client's absolute deadline (Unix
	// milliseconds; 0 = none).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// PartIngestResult is one partition's outcome within an ingest batch.
type PartIngestResult struct {
	Part int `json:"part"`
	Rows int `json:"rows"`
	// Acked reports whether the write quorum was reached. An unacked
	// batch may still have been applied by a subset of the owners;
	// callers must treat it as lost-or-present, never as absent.
	Acked bool   `json:"acked"`
	Seq   uint64 `json:"seq,omitempty"`
	Error string `json:"error,omitempty"`
}

// IngestResponse summarises an ingest batch: per-partition quorum
// results plus the answering node's data version after apply.
type IngestResponse struct {
	Node       string             `json:"node"`
	AckedRows  int                `json:"acked_rows"`
	FailedRows int                `json:"failed_rows"`
	Version    int64              `json:"version"`
	Parts      []PartIngestResult `json:"parts"`
	// Spans is the write path's span tree (only when the request asked
	// for a trace). Forwarding nodes stitch the primary's spans under
	// their own forward span.
	Spans []trace.WireSpan `json:"spans,omitempty"`
	// Epoch is the answering node's membership epoch.
	Epoch int64 `json:"epoch,omitempty"`
}

// ReplicateRequest is the primary-to-replica POST /v1/replicate body:
// one sequenced partition batch. Replicas apply batches strictly in
// sequence order, so every holder's partition log is identical.
type ReplicateRequest struct {
	Part int       `json:"part"`
	Seq  uint64    `json:"seq"`
	Rows []WireRow `json:"rows"`
	// Epoch is the primary's membership epoch (stale replicas refetch).
	Epoch int64 `json:"epoch,omitempty"`
}

// ReplicateResponse reports the replica's last applied sequence.
type ReplicateResponse struct {
	LastSeq uint64 `json:"last_seq"`
	// Epoch is the replica's membership epoch.
	Epoch int64 `json:"epoch,omitempty"`
}

// WALFetchRequest is the POST /v1/walfetch body: a recovering replica
// asks a peer holder for partition entries it missed (the "log tail"
// of snapshot-plus-log-replay recovery).
type WALFetchRequest struct {
	Part  int    `json:"part"`
	After uint64 `json:"after"`
	// Max bounds the entry count of one response (0 takes the server's
	// walFetchMaxDefault); callers loop while Truncated.
	Max int `json:"max,omitempty"`
	// Epoch is the caller's membership epoch.
	Epoch int64 `json:"epoch,omitempty"`
}

// WALFetchEntry is one sequenced batch of a fetched log tail.
type WALFetchEntry struct {
	Seq  uint64    `json:"seq"`
	Rows []WireRow `json:"rows"`
}

// WALFetchResponse carries a partition's log tail.
type WALFetchResponse struct {
	Part    int             `json:"part"`
	LastSeq uint64          `json:"last_seq"`
	Entries []WALFetchEntry `json:"entries"`
	// Truncated reports the tail hit the per-response entry cap; the
	// caller fetches another round starting after the last entry.
	Truncated bool `json:"truncated,omitempty"`
	// Fenced reports the holder served the tail while holding the
	// partition's write lock: LastSeq cannot advance behind the
	// caller's back, so a gainer's final cutover sync is complete once
	// a fenced response at the new epoch shows no missing entries.
	// Unfenced responses (the lock was contended) are still correct
	// tails — just not a cutover guarantee.
	Fenced bool `json:"fenced,omitempty"`
	// NoWAL reports the holder has the partition in memory only (no
	// durability configured); LastSeq is still authoritative and the
	// caller falls back to a snapshot fetch for missing rows.
	NoWAL bool `json:"no_wal,omitempty"`
	// Epoch is the holder's membership epoch.
	Epoch int64 `json:"epoch,omitempty"`
}

// wireToRows converts wire rows to storage rows.
func wireToRows(ws []WireRow) []storage.Row {
	out := make([]storage.Row, len(ws))
	for i, w := range ws {
		out[i] = storage.Row{Key: w.Key, Vec: w.Vec}
	}
	return out
}

// rowsToWire converts storage rows to wire rows.
func rowsToWire(rows []storage.Row) []WireRow {
	out := make([]WireRow, len(rows))
	for i, r := range rows {
		out[i] = WireRow{Key: r.Key, Vec: r.Vec}
	}
	return out
}
