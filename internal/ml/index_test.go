package ml

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func randVec(rng *rand.Rand, dims int, span float64) []float64 {
	v := make([]float64, dims)
	for j := range v {
		v[j] = (rng.Float64() - 0.5) * 2 * span
	}
	return v
}

// TestGridAssignMatchesLinearScan is the exactness property of the
// prototype index: over random prototype sets (grown through Observe,
// so prototypes migrate and spawn exactly like the live quantiser's),
// Assign through the grid must return the same winner AND the same
// squared distance as a plain NearestCentroid scan — ties included.
func TestGridAssignMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	spawns := []float64{25, 100, 400, 2500}
	for trial := 0; trial < 120; trial++ {
		dims := 1 + rng.Intn(6)
		spawn := spawns[rng.Intn(len(spawns))]
		q := NewOnlineAVQ(spawn, 128)
		n := 1 + rng.Intn(120)
		for i := 0; i < n; i++ {
			q.Observe(randVec(rng, dims, 120))
		}
		probe := func(stage string) {
			protos := q.Prototypes()
			for k := 0; k < 60; k++ {
				x := randVec(rng, dims, 200)
				gi, gd := q.Assign(x)
				li, ld := NearestCentroid(protos, x)
				if gi != li || gd != ld {
					t.Fatalf("trial %d (%s, dims=%d spawn=%v protos=%d): Assign=(%d,%v) linear=(%d,%v)",
						trial, stage, dims, spawn, len(protos), gi, gd, li, ld)
				}
			}
		}
		probe("grown")
		// Purging renumbers prototypes; the index must follow.
		q.PurgeStale(int64(rng.Intn(40)))
		probe("purged")
		// A state round trip rebuilds the index lazily.
		rt, err := NewOnlineAVQFromState(q.State())
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 20; k++ {
			x := randVec(rng, dims, 200)
			gi, gd := rt.Assign(x)
			li, ld := q.Assign(x)
			if gi != li || gd != ld {
				t.Fatalf("trial %d: restored Assign=(%d,%v) != original (%d,%v)", trial, gi, gd, li, ld)
			}
		}
	}
}

// TestGridObserveMatchesLinearReference feeds one stream to an indexed
// quantiser and to a force-linear reference: every Observe must pick
// the same winner and leave bit-identical prototypes, counts and ages —
// the indexed quantiser is an accelerator, not a behaviour change.
func TestGridObserveMatchesLinearReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		dims := 1 + rng.Intn(4)
		indexed := NewOnlineAVQ(225, 64)
		linear := NewOnlineAVQ(225, 64)
		linear.noGrid = true
		for i := 0; i < 800; i++ {
			x := randVec(rng, dims, 100)
			wi := indexed.Observe(x)
			wl := linear.Observe(CopyVec(x))
			if wi != wl {
				t.Fatalf("trial %d step %d: indexed winner %d != linear %d", trial, i, wi, wl)
			}
		}
		if indexed.Len() != linear.Len() {
			t.Fatalf("trial %d: %d prototypes != %d", trial, indexed.Len(), linear.Len())
		}
		ip, lp := indexed.Prototypes(), linear.Prototypes()
		for i := range ip {
			for j := range ip[i] {
				if ip[i][j] != lp[i][j] {
					t.Fatalf("trial %d: prototype %d dim %d: %v != %v", trial, i, j, ip[i][j], lp[i][j])
				}
			}
			if indexed.Count(i) != linear.Count(i) {
				t.Fatalf("trial %d: count %d: %d != %d", trial, i, indexed.Count(i), linear.Count(i))
			}
		}
	}
}

// TestGridAssignConcurrentReaders pins the index's concurrency
// contract: Assign is a pure read, so any number of goroutines may
// call it simultaneously on a warm (grid-built) quantiser — the
// scenario core.Agent.TryPredict creates under its shared read lock.
// Run under -race this fails if Assign ever mutates shared state
// again (e.g. lazily building candidate lists).
func TestGridAssignConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := NewOnlineAVQ(225, 128)
	for i := 0; i < 4000; i++ {
		q.Observe(randVec(rng, 3, 400))
	}
	if q.Len() < gridMinProtos {
		t.Fatalf("setup grew only %d prototypes, want >= %d for the grid", q.Len(), gridMinProtos)
	}
	protos := q.Prototypes()
	probes := make([][]float64, 128)
	for i := range probes {
		p := protos[rng.Intn(len(protos))]
		x := make([]float64, len(p))
		for j := range x {
			x[j] = p[j] + (rng.Float64()-0.5)*10
		}
		probes[i] = x
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 3000; i++ {
				x := probes[(i+w)%len(probes)]
				gi, gd := q.Assign(x)
				li, ld := NearestCentroid(protos, x)
				if gi != li || gd != ld {
					done <- fmt.Errorf("worker %d: Assign=(%d,%v) linear=(%d,%v)", w, gi, gd, li, ld)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkAssignIndexedVsLinear(b *testing.B) {
	for _, maxProtos := range []int{64, 256, 1024} {
		span := 30 * math.Sqrt(float64(maxProtos))
		// Every build replays one deterministic stream, so the linear
		// and indexed quantisers hold identical prototypes and the
		// probes are in-coverage for both.
		build := func(noGrid bool) *OnlineAVQ {
			rng := rand.New(rand.NewSource(3))
			q := NewOnlineAVQ(225, maxProtos)
			q.noGrid = noGrid
			for i := 0; i < 20*maxProtos; i++ {
				q.Observe(randVec(rng, 3, span))
			}
			return q
		}
		rng := rand.New(rand.NewSource(99))
		// In-coverage probes (within the spawn radius of some
		// prototype): the population the TryPredict fast path routes.
		ref := build(true)
		protos := ref.Prototypes()
		probes := make([][]float64, 256)
		for i := range probes {
			p := protos[rng.Intn(len(protos))]
			x := make([]float64, len(p))
			for j := range x {
				x[j] = p[j] + (rng.Float64()-0.5)*10
			}
			probes[i] = x
		}
		name := "protos=" + itoa(len(protos))
		b.Run(name+"/indexed", func(b *testing.B) {
			q := build(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Assign(probes[i%len(probes)])
			}
		})
		b.Run(name+"/linear", func(b *testing.B) {
			q := build(true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Assign(probes[i%len(probes)])
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
