package ml

import (
	"fmt"
	"sort"
)

// KNNRegressor predicts by averaging the targets of the k nearest
// training points (optionally inverse-distance weighted). It is both a
// candidate per-quantum answer model (ref [48]: query-driven regression
// model selection) and the estimator behind kNN-regression on ad-hoc
// subspaces (RT2.2).
type KNNRegressor struct {
	// K is the neighbourhood size (default 5).
	K int
	// Weighted enables inverse-distance weighting.
	Weighted bool

	xs [][]float64
	ys []float64
}

// Fit stores the training set (copies the slices' headers, not the
// vectors; callers must not mutate the vectors afterwards — simulation
// datasets are immutable by construction).
func (k *KNNRegressor) Fit(xs [][]float64, ys []float64) error {
	if len(xs) == 0 || len(ys) < len(xs) {
		return fmt.Errorf("knn regressor fit: %w", ErrNoData)
	}
	k.xs = xs
	k.ys = ys[:len(xs)]
	return nil
}

// Predict returns the (weighted) mean target among the k nearest stored
// points; an unfitted model returns 0.
func (k *KNNRegressor) Predict(x []float64) float64 {
	idx, d2 := k.neighbours(x)
	if len(idx) == 0 {
		return 0
	}
	if !k.Weighted {
		var s float64
		for _, i := range idx {
			s += k.ys[i]
		}
		return s / float64(len(idx))
	}
	var num, den float64
	for j, i := range idx {
		w := 1 / (1e-9 + d2[j])
		num += w * k.ys[i]
		den += w
	}
	return num / den
}

func (k *KNNRegressor) neighbours(x []float64) ([]int, []float64) {
	n := len(k.xs)
	if n == 0 {
		return nil, nil
	}
	kk := k.K
	if kk <= 0 {
		kk = 5
	}
	if kk > n {
		kk = n
	}
	type nd struct {
		i  int
		d2 float64
	}
	all := make([]nd, n)
	for i, p := range k.xs {
		all[i] = nd{i, SquaredDistance(p, x)}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].d2 < all[b].d2 })
	idx := make([]int, kk)
	d2 := make([]float64, kk)
	for j := 0; j < kk; j++ {
		idx[j] = all[j].i
		d2[j] = all[j].d2
	}
	return idx, d2
}

// KNNClassifier predicts the majority label among the k nearest training
// points. Labels are small non-negative ints.
type KNNClassifier struct {
	// K is the neighbourhood size (default 5).
	K int

	xs     [][]float64
	labels []int
}

// Fit stores the training set.
func (k *KNNClassifier) Fit(xs [][]float64, labels []int) error {
	if len(xs) == 0 || len(labels) < len(xs) {
		return fmt.Errorf("knn classifier fit: %w", ErrNoData)
	}
	k.xs = xs
	k.labels = labels[:len(xs)]
	return nil
}

// Predict returns the majority vote; ties break toward the smaller label.
// An unfitted model returns -1.
func (k *KNNClassifier) Predict(x []float64) int {
	reg := KNNRegressor{K: k.K}
	reg.xs = k.xs
	idx, _ := reg.neighbours(x)
	if len(idx) == 0 {
		return -1
	}
	votes := make(map[int]int)
	for _, i := range idx {
		votes[k.labels[i]]++
	}
	best, bestN := -1, -1
	for lbl, n := range votes {
		if n > bestN || (n == bestN && lbl < best) {
			best, bestN = lbl, n
		}
	}
	return best
}
