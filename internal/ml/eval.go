package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Regressor is the interface shared by all of this package's regression
// models and satisfied by per-quantum answer models; the optimizer's
// model-selection machinery (ref [48]) works against it.
type Regressor interface {
	Fit(xs [][]float64, ys []float64) error
	Predict(x []float64) float64
}

// RMSE returns the root-mean-squared error of predictions vs truth.
func RMSE(pred, truth []float64) float64 {
	n := len(pred)
	if len(truth) < n {
		n = len(truth)
	}
	if n == 0 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}

// MAE returns the mean absolute error.
func MAE(pred, truth []float64) float64 {
	n := len(pred)
	if len(truth) < n {
		n = len(truth)
	}
	if n == 0 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(n)
}

// MAPE returns the mean absolute percentage error in [0, +inf), skipping
// zero-truth samples (convention used by refs [26]-[29] for count
// accuracy, where relative error is the headline metric).
func MAPE(pred, truth []float64) float64 {
	n := len(pred)
	if len(truth) < n {
		n = len(truth)
	}
	var s float64
	var m int
	for i := 0; i < n; i++ {
		if truth[i] == 0 {
			continue
		}
		s += math.Abs(pred[i]-truth[i]) / math.Abs(truth[i])
		m++
	}
	if m == 0 {
		return 0
	}
	return s / float64(m)
}

// R2 returns the coefficient of determination; 1 is perfect, 0 matches
// predicting the mean, negative is worse than the mean.
func R2(pred, truth []float64) float64 {
	n := len(pred)
	if len(truth) < n {
		n = len(truth)
	}
	if n == 0 {
		return 0
	}
	m := Mean(truth[:n])
	var ssRes, ssTot float64
	for i := 0; i < n; i++ {
		d := truth[i] - pred[i]
		ssRes += d * d
		t := truth[i] - m
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// Quantile returns the q-th quantile (0..1) of xs by sorting a copy;
// linear interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := CopyVec(xs)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// CrossValidateRMSE estimates a model family's out-of-sample RMSE with
// k-fold cross-validation. factory must return a fresh unfitted model per
// fold. rng shuffles the fold assignment; deterministic for a fixed seed.
func CrossValidateRMSE(factory func() Regressor, xs [][]float64, ys []float64, folds int, rng *rand.Rand) (float64, error) {
	n := len(xs)
	if n == 0 || len(ys) < n {
		return 0, fmt.Errorf("cross-validate: %w", ErrNoData)
	}
	if folds < 2 {
		folds = 2
	}
	if folds > n {
		folds = n
	}
	perm := rng.Perm(n)
	var sse float64
	var count int
	for f := 0; f < folds; f++ {
		var trX [][]float64
		var trY []float64
		var teX [][]float64
		var teY []float64
		for i, p := range perm {
			if i%folds == f {
				teX = append(teX, xs[p])
				teY = append(teY, ys[p])
			} else {
				trX = append(trX, xs[p])
				trY = append(trY, ys[p])
			}
		}
		if len(trX) == 0 || len(teX) == 0 {
			continue
		}
		m := factory()
		if err := m.Fit(trX, trY); err != nil {
			return 0, fmt.Errorf("cross-validate fold %d: %w", f, err)
		}
		for i, x := range teX {
			d := m.Predict(x) - teY[i]
			sse += d * d
			count++
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("cross-validate: %w", ErrNoData)
	}
	return math.Sqrt(sse / float64(count)), nil
}

// SelectModel runs cross-validation for each named factory and returns the
// name with the lowest RMSE alongside all scores. This is the mechanism of
// "query-driven regression model selection" (ref [48]) used per quantum by
// the SEA agent and by RT3.3's inference-model selection.
func SelectModel(factories map[string]func() Regressor, xs [][]float64, ys []float64, folds int, rng *rand.Rand) (string, map[string]float64, error) {
	if len(factories) == 0 {
		return "", nil, fmt.Errorf("select model: %w", ErrNoData)
	}
	scores := make(map[string]float64, len(factories))
	names := make([]string, 0, len(factories))
	for name := range factories {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic iteration
	best := ""
	bestScore := math.Inf(1)
	for _, name := range names {
		// Derive a per-model rng stream so that map order never matters.
		sub := rand.New(rand.NewSource(rng.Int63()))
		score, err := CrossValidateRMSE(factories[name], xs, ys, folds, sub)
		if err != nil {
			return "", nil, fmt.Errorf("select model %q: %w", name, err)
		}
		scores[name] = score
		if score < bestScore {
			bestScore = score
			best = name
		}
	}
	return best, scores, nil
}
