package ml

import (
	"fmt"
	"math"
)

// LinearRegression is an ordinary/ridge least-squares model with an
// intercept: y ≈ w·x + b. Fit solves the normal equations with a Cholesky
// factorisation; Ridge > 0 adds Tikhonov regularisation (the intercept is
// not regularised). After Fit, the model is safe for concurrent Predict.
type LinearRegression struct {
	// Ridge is the L2 regularisation strength applied at Fit time.
	Ridge float64

	weights   []float64
	intercept float64
	fitted    bool
}

// Fit estimates weights from design matrix xs (n samples, d features each)
// and targets ys. It returns ErrNoData for empty input and ErrSingular
// when the (regularised) normal equations cannot be solved.
func (lr *LinearRegression) Fit(xs [][]float64, ys []float64) error {
	n := len(xs)
	if n == 0 || len(ys) < n {
		return fmt.Errorf("linear regression fit: %w", ErrNoData)
	}
	d := len(xs[0])
	// Augment with intercept column: solve for [w; b].
	k := d + 1
	ata := NewMatrix(k, k)
	atb := make([]float64, k)
	xi := make([]float64, k)
	for i := 0; i < n; i++ {
		copy(xi, xs[i])
		xi[d] = 1
		for r := 0; r < k; r++ {
			atb[r] += xi[r] * ys[i]
			row := ata.Row(r)
			for c := r; c < k; c++ {
				row[c] += xi[r] * xi[c]
			}
		}
	}
	// Mirror the upper triangle and add the ridge term (not on intercept).
	for r := 0; r < k; r++ {
		for c := 0; c < r; c++ {
			ata.Set(r, c, ata.At(c, r))
		}
	}
	for r := 0; r < d; r++ {
		ata.Set(r, r, ata.At(r, r)+lr.Ridge)
	}
	// Tiny jitter keeps near-singular designs solvable (constant features).
	for r := 0; r < k; r++ {
		ata.Set(r, r, ata.At(r, r)+1e-9)
	}
	sol, err := CholeskySolve(ata, atb)
	if err != nil {
		return fmt.Errorf("linear regression fit: %w", err)
	}
	lr.weights = sol[:d]
	lr.intercept = sol[d]
	lr.fitted = true
	return nil
}

// Predict returns w·x + b. Unfitted models predict 0.
func (lr *LinearRegression) Predict(x []float64) float64 {
	if !lr.fitted {
		return 0
	}
	return Dot(lr.weights, x) + lr.intercept
}

// Weights returns a copy of the fitted coefficient vector.
func (lr *LinearRegression) Weights() []float64 { return CopyVec(lr.weights) }

// Intercept returns the fitted intercept.
func (lr *LinearRegression) Intercept() float64 { return lr.intercept }

// Fitted reports whether Fit has succeeded.
func (lr *LinearRegression) Fitted() bool { return lr.fitted }

// RLS is a recursive-least-squares online linear model with an intercept
// and exponential forgetting. It is the workhorse of the SEA agent's
// per-quantum answer models (RT1.3): each (query, answer) pair observed in
// the training stream refines the model in O(d²) without re-solving.
//
// The forgetting factor lambda in (0, 1] discounts old observations, which
// is what lets models track base-data updates and drifting interests
// (RT1.4): lambda = 1 is ordinary RLS; 0.98 forgets with ~50-sample
// half-life.
type RLS struct {
	dim     int
	lambda  float64
	weights []float64 // last entry is the intercept
	p       *Matrix   // inverse covariance estimate
	n       int64
}

// NewRLS creates an RLS model for dim input features with forgetting
// factor lambda (clamped into (0,1]). delta sets the initial inverse
// covariance scale: large delta (e.g. 1000) means weak priors.
func NewRLS(dim int, lambda, delta float64) *RLS {
	if lambda <= 0 || lambda > 1 {
		lambda = 1
	}
	if delta <= 0 {
		delta = 1000
	}
	k := dim + 1
	p := NewMatrix(k, k)
	for i := 0; i < k; i++ {
		p.Set(i, i, delta)
	}
	return &RLS{
		dim:     dim,
		lambda:  lambda,
		weights: make([]float64, k),
		p:       p,
	}
}

// Observe folds one (x, y) pair into the model and returns the a-priori
// prediction error (the innovation), which callers use for drift
// detection.
func (r *RLS) Observe(x []float64, y float64) float64 {
	k := r.dim + 1
	xi := make([]float64, k)
	copy(xi, x)
	xi[r.dim] = 1

	// px = P x
	px := make([]float64, k)
	for i := 0; i < k; i++ {
		px[i] = Dot(r.p.Row(i), xi)
	}
	denom := r.lambda + Dot(xi, px)
	gain := make([]float64, k)
	for i := 0; i < k; i++ {
		gain[i] = px[i] / denom
	}
	innovation := y - Dot(r.weights, xi)
	AXPY(innovation, gain, r.weights)
	// P = (P - gain * px^T) / lambda
	for i := 0; i < k; i++ {
		row := r.p.Row(i)
		gi := gain[i]
		for j := 0; j < k; j++ {
			row[j] = (row[j] - gi*px[j]) / r.lambda
		}
	}
	r.n++
	return innovation
}

// Predict returns the current estimate w·x + b.
func (r *RLS) Predict(x []float64) float64 {
	s := r.weights[r.dim] // intercept
	d := r.dim
	if len(x) < d {
		d = len(x)
	}
	for i := 0; i < d; i++ {
		s += r.weights[i] * x[i]
	}
	return s
}

// Count returns the number of observations folded in so far.
func (r *RLS) Count() int64 { return r.n }

// Weights returns a copy of [w..., intercept].
func (r *RLS) Weights() []float64 { return CopyVec(r.weights) }

// SetWeights overwrites the coefficient vector (used when a core node
// ships a trained model to an edge agent, RT5.2). The slice must have
// dim+1 entries; extra entries are ignored and missing ones keep their
// old values.
func (r *RLS) SetWeights(w []float64) {
	n := len(w)
	if n > len(r.weights) {
		n = len(r.weights)
	}
	copy(r.weights[:n], w[:n])
}

// Dim returns the model's input dimensionality (excluding intercept).
func (r *RLS) Dim() int { return r.dim }

// RLSState is the complete serialisable state of an RLS model: weights,
// the inverse-covariance estimate and the observation count. A model
// restored from its state continues training exactly where the original
// left off, which is what lets cluster nodes ship warm models instead of
// data (RT1.5, RT5.2).
type RLSState struct {
	Dim     int       `json:"dim"`
	Lambda  float64   `json:"lambda"`
	Weights []float64 `json:"weights"`
	// P is the row-major (dim+1)x(dim+1) inverse covariance estimate.
	P []float64 `json:"p"`
	N int64     `json:"n"`
}

// State exports the model's full state (copies, no aliasing).
func (r *RLS) State() RLSState {
	return RLSState{
		Dim:     r.dim,
		Lambda:  r.lambda,
		Weights: CopyVec(r.weights),
		P:       CopyVec(r.p.Data),
		N:       r.n,
	}
}

// NewRLSFromState rebuilds a model from an exported state. Predictions
// and subsequent Observe calls are bit-identical to the original's.
func NewRLSFromState(st RLSState) (*RLS, error) {
	k := st.Dim + 1
	if st.Dim < 0 || len(st.Weights) != k || len(st.P) != k*k {
		return nil, fmt.Errorf("%w: RLS state dim %d with %d weights, %d P entries",
			ErrDimensionMismatch, st.Dim, len(st.Weights), len(st.P))
	}
	r := NewRLS(st.Dim, st.Lambda, 1)
	copy(r.weights, st.Weights)
	copy(r.p.Data, st.P)
	r.n = st.N
	return r, nil
}

// PolyFeatures expands x into degree-2 polynomial features: the original
// coordinates, all squares, and all pairwise products. SEA's answer models
// use this to capture the quadratic growth of COUNT with subspace volume.
func PolyFeatures(x []float64) []float64 {
	return PolyFeaturesInto(make([]float64, 0, PolyDim(len(x))), x)
}

// PolyFeaturesInto appends the degree-2 polynomial expansion of x to
// dst and returns it — the allocation-free variant serving hot paths
// use with a reusable scratch buffer (pass dst[:0] with capacity
// PolyDim(len(x))).
func PolyFeaturesInto(dst, x []float64) []float64 {
	d := len(x)
	dst = append(dst, x...)
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			dst = append(dst, x[i]*x[j])
		}
	}
	return dst
}

// PolyDim returns len(PolyFeatures(x)) for an input of dimension d.
func PolyDim(d int) int { return d + d*(d+1)/2 }

// StandardScaler centres and scales features to zero mean and unit
// variance, the usual preconditioning before distance-based models.
type StandardScaler struct {
	mean, std []float64
	fitted    bool
}

// Fit computes per-dimension means and standard deviations.
func (s *StandardScaler) Fit(xs [][]float64) error {
	if len(xs) == 0 {
		return fmt.Errorf("scaler fit: %w", ErrNoData)
	}
	d := len(xs[0])
	s.mean = make([]float64, d)
	s.std = make([]float64, d)
	for _, x := range xs {
		for j := 0; j < d && j < len(x); j++ {
			s.mean[j] += x[j]
		}
	}
	n := float64(len(xs))
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, x := range xs {
		for j := 0; j < d && j < len(x); j++ {
			dd := x[j] - s.mean[j]
			s.std[j] += dd * dd
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / n)
		if s.std[j] < 1e-12 {
			s.std[j] = 1
		}
	}
	s.fitted = true
	return nil
}

// Transform returns a scaled copy of x.
func (s *StandardScaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	if !s.fitted {
		return out
	}
	for j := 0; j < len(out) && j < len(s.mean); j++ {
		out[j] = (out[j] - s.mean[j]) / s.std[j]
	}
	return out
}

// TransformAll maps Transform over a dataset.
func (s *StandardScaler) TransformAll(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = s.Transform(x)
	}
	return out
}
