package ml

import (
	"math/rand"
	"testing"
)

func TestRLSStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := NewRLS(3, 0.99, 1000)
	obs := func(m *RLS, seed int64) {
		g := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			x := []float64{g.NormFloat64(), g.NormFloat64(), g.NormFloat64()}
			m.Observe(x, 2*x[0]-x[1]+0.5*x[2]+1)
		}
	}
	obs(r, 1)

	restored, err := NewRLSFromState(r.State())
	if err != nil {
		t.Fatal(err)
	}
	// Predictions bit-identical now, and after identical further training.
	for i := 0; i < 20; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if a, b := r.Predict(x), restored.Predict(x); a != b {
			t.Fatalf("prediction diverged: %v vs %v", a, b)
		}
	}
	obs(r, 2)
	obs(restored, 2)
	if r.Count() != restored.Count() {
		t.Errorf("counts diverged: %d vs %d", r.Count(), restored.Count())
	}
	for i := 0; i < 20; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if a, b := r.Predict(x), restored.Predict(x); a != b {
			t.Fatalf("post-train prediction diverged: %v vs %v", a, b)
		}
	}

	if _, err := NewRLSFromState(RLSState{Dim: 2, Weights: []float64{1}}); err == nil {
		t.Error("malformed RLS state accepted")
	}
}

func TestAVQStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q := NewOnlineAVQ(4, 16)
	feed := func(avq *OnlineAVQ, seed int64, n int) {
		g := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			c := float64(g.Intn(3)) * 10
			avq.Observe([]float64{c + g.NormFloat64(), c + g.NormFloat64()})
		}
	}
	feed(q, 1, 200)

	restored, err := NewOnlineAVQFromState(q.State())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != q.Len() {
		t.Fatalf("prototype counts diverged: %d vs %d", restored.Len(), q.Len())
	}
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64() * 30, rng.Float64() * 30}
		w1, d1 := q.Assign(x)
		w2, d2 := restored.Assign(x)
		if w1 != w2 || d1 != d2 {
			t.Fatalf("assignment diverged at %v: (%d,%v) vs (%d,%v)", x, w1, d1, w2, d2)
		}
	}
	// Identical further observations keep the two in lockstep.
	feed(q, 2, 100)
	feed(restored, 2, 100)
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64() * 30, rng.Float64() * 30}
		w1, d1 := q.Assign(x)
		w2, d2 := restored.Assign(x)
		if w1 != w2 || d1 != d2 {
			t.Fatalf("post-train assignment diverged at %v", x)
		}
	}

	if _, err := NewOnlineAVQFromState(AVQState{Prototypes: [][]float64{{1}}, Counts: []int64{1}}); err == nil {
		t.Error("malformed AVQ state accepted")
	}
}
