package ml

import "math"

// This file is the quantiser's prototype index: an exact accelerator
// for nearest-prototype lookup. OnlineAVQ.Assign sits on the serving
// hot path (every TryPredict routes its query through it), and the
// naive NearestCentroid scan costs O(quanta x dims) per call.
//
// The index is a uniform grid of eagerly-maintained candidate lists
// over the prototypes' leading coordinates, with cell side
// sqrt(SpawnDistance) — the quantiser's own coverage radius. Every
// prototype registers itself in the lists of its cell and that cell's
// Chebyshev-1 neighbours (3^dims lists, <= 27), so the list stored for
// any cell holds exactly the prototypes within one cell of it. A
// lookup is one map access plus a scan of those few candidates, and
// the winner is provably exact whenever its squared distance is below
// cell side squared: any unlisted prototype is at least one full cell
// away along some indexed axis. That threshold equals SpawnDistance,
// i.e. exactly the agent's query-space coverage test — every
// in-coverage lookup (the entire prediction fast path) is proven, and
// anything farther falls back to the full scan it would have needed
// anyway.
//
// Concurrency contract: lookups are pure reads and never mutate the
// index, so any number of readers may run concurrently; all mutation
// happens in OnlineAVQ's write paths (Observe, purge), which owners
// serialise against readers (the SEA agent holds its RWMutex
// accordingly).
//
// The index is exact, tie-breaks included: when it answers, it returns
// bit-identically what NearestCentroid would. Maintenance is
// incremental: a spawned prototype inserts into its 3^dims lists, a
// winner migrating across a cell boundary moves between the affected
// lists, and a purge rebuilds from scratch (prototypes renumber).

const (
	// gridMaxDims caps how many leading coordinates the index buckets:
	// neighbourhood sizes grow 3^dims, and the exactness proof only
	// needs the indexed subspace distance as a lower bound.
	gridMaxDims = 3
	// gridMinProtos is the prototype count below which a linear scan is
	// already cheaper than any index bookkeeping.
	gridMinProtos = 24
)

// gridCell addresses one cell; unused trailing dims stay zero.
type gridCell [gridMaxDims]int32

// protoGrid is the candidate-list index over a prototype set.
type protoGrid struct {
	cell  float64 // cell side length (sqrt of the spawn distance)
	dims  int     // indexed leading coordinates, <= gridMaxDims
	keys  []gridCell
	lists map[gridCell][]int32 // cell -> prototypes within 1 cell of it
}

func newProtoGrid(cellSide float64, dims int, protos [][]float64) *protoGrid {
	if dims > gridMaxDims {
		dims = gridMaxDims
	}
	g := &protoGrid{
		cell:  cellSide,
		dims:  dims,
		keys:  make([]gridCell, 0, len(protos)),
		lists: make(map[gridCell][]int32, 27*len(protos)/8),
	}
	for _, p := range protos {
		if !g.insert(p) {
			return nil // non-finite or short prototype: stay linear
		}
	}
	return g
}

// cellOf buckets the leading coordinates of x. ok is false when x is
// too short or non-finite in an indexed dimension (the caller must then
// fall back to the full scan).
func (g *protoGrid) cellOf(x []float64) (gridCell, bool) {
	var c gridCell
	if len(x) < g.dims {
		return c, false
	}
	for j := 0; j < g.dims; j++ {
		v := x[j] / g.cell
		if math.IsNaN(v) || v >= math.MaxInt32 || v <= math.MinInt32 {
			return c, false
		}
		c[j] = int32(math.Floor(v))
	}
	return c, true
}

// eachNeighbour calls fn for c and its Chebyshev-1 neighbours (3^dims
// cells).
func (g *protoGrid) eachNeighbour(c gridCell, fn func(gridCell)) {
	k := c
	switch g.dims {
	case 1:
		for dx := int32(-1); dx <= 1; dx++ {
			k[0] = c[0] + dx
			fn(k)
		}
	case 2:
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				k[0], k[1] = c[0]+dx, c[1]+dy
				fn(k)
			}
		}
	default:
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				for dz := int32(-1); dz <= 1; dz++ {
					k[0], k[1], k[2] = c[0]+dx, c[1]+dy, c[2]+dz
					fn(k)
				}
			}
		}
	}
}

// enlist adds prototype i to cell k's candidate list.
func (g *protoGrid) enlist(k gridCell, i int32) {
	g.lists[k] = append(g.lists[k], i)
}

// delist removes prototype i from cell k's candidate list (swap-delete:
// list order is irrelevant, ties are resolved by prototype index).
func (g *protoGrid) delist(k gridCell, i int32) {
	list := g.lists[k]
	for j, v := range list {
		if v == i {
			list[j] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(g.lists, k)
	} else {
		g.lists[k] = list
	}
}

// insert registers one appended prototype (index = current count) in
// the lists of its cell's neighbourhood.
func (g *protoGrid) insert(p []float64) bool {
	c, ok := g.cellOf(p)
	if !ok {
		return false
	}
	i := int32(len(g.keys))
	g.keys = append(g.keys, c)
	g.eachNeighbour(c, func(k gridCell) { g.enlist(k, i) })
	return true
}

// update re-buckets prototype i after its coordinates moved. It reports
// false when the moved prototype can no longer be indexed (the owner
// then drops the index). A move within its cell costs nothing: lists
// hold indices, distances are computed live.
func (g *protoGrid) update(i int, p []float64) bool {
	c, ok := g.cellOf(p)
	if !ok {
		return false
	}
	if old := g.keys[i]; c != old {
		g.keys[i] = c
		g.eachNeighbour(old, func(k gridCell) { g.delist(k, int32(i)) })
		g.eachNeighbour(c, func(k gridCell) { g.enlist(k, int32(i)) })
	}
	return true
}

// nearest returns the index of and squared distance to the prototype
// nearest x — bit-identical to NearestCentroid(protos, x) — whenever it
// can prove the winner from the cell's candidate list: any unlisted
// prototype is at least one full cell away along some indexed axis, so
// a candidate strictly inside cell² wins globally. Equal distances keep
// the lower prototype index, matching NearestCentroid's
// first-strictly-smaller rule. ok is false when the proof fails (the
// query is outside the quantiser's coverage radius, or its cell has no
// nearby prototypes at all) and the caller must scan. Pure read.
func (g *protoGrid) nearest(protos [][]float64, x []float64) (int, float64, bool) {
	c, cok := g.cellOf(x)
	if !cok {
		return -1, 0, false
	}
	best, bestD := -1, math.Inf(1)
	for _, i := range g.lists[c] {
		d := SquaredDistance(protos[i], x)
		if d < bestD || (d == bestD && int(i) < best) {
			bestD, best = d, int(i)
		}
	}
	if best < 0 || bestD >= g.cell*g.cell {
		// Unproven (or a boundary tie an unseen prototype could share):
		// let the caller scan linearly.
		return -1, 0, false
	}
	return best, bestD, true
}
