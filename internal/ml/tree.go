package ml

import (
	"fmt"
	"math"
	"sort"
)

// RegressionTree is a CART regression tree with axis-aligned splits,
// variance-reduction split selection, and depth/leaf-size stopping rules.
// It serves the optimizer (RT3): learned cost models that decide between
// execution alternatives are trees or boosted stumps over workload
// features.
type RegressionTree struct {
	// MaxDepth bounds tree depth (default 4).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 2).
	MinLeaf int

	root *treeNode
}

type treeNode struct {
	feature   int
	threshold float64
	value     float64
	left      *treeNode
	right     *treeNode
}

func (n *treeNode) isLeaf() bool { return n.left == nil }

// Fit grows the tree on xs/ys.
func (t *RegressionTree) Fit(xs [][]float64, ys []float64) error {
	if len(xs) == 0 || len(ys) < len(xs) {
		return fmt.Errorf("regression tree fit: %w", ErrNoData)
	}
	maxDepth := t.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 4
	}
	minLeaf := t.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	t.root = growTree(xs, ys, idx, maxDepth, minLeaf)
	return nil
}

// Predict routes x to a leaf and returns its mean target. Unfitted trees
// return 0.
func (t *RegressionTree) Predict(x []float64) float64 {
	n := t.root
	if n == nil {
		return 0
	}
	for !n.isLeaf() {
		if feat(x, n.feature) <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the fitted tree's depth (0 for a stump/leaf-only tree).
func (t *RegressionTree) Depth() int { return nodeDepth(t.root) }

func nodeDepth(n *treeNode) int {
	if n == nil || n.isLeaf() {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if r > l {
		l = r
	}
	return 1 + l
}

func feat(x []float64, j int) float64 {
	if j < len(x) {
		return x[j]
	}
	return 0
}

func growTree(xs [][]float64, ys []float64, idx []int, depth, minLeaf int) *treeNode {
	node := &treeNode{value: meanAt(ys, idx)}
	if depth == 0 || len(idx) < 2*minLeaf {
		return node
	}
	bestFeat, bestThr, bestGain := -1, 0.0, 0.0
	baseSSE := sseAt(ys, idx, node.value)
	d := len(xs[idx[0]])
	order := make([]int, len(idx))
	for j := 0; j < d; j++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool {
			return feat(xs[order[a]], j) < feat(xs[order[b]], j)
		})
		// Prefix sums over the sorted order allow O(n) split scanning.
		var sumL, sumSqL float64
		var sumR, sumSqR float64
		for _, i := range order {
			sumR += ys[i]
			sumSqR += ys[i] * ys[i]
		}
		nL := 0
		nR := len(order)
		for s := 0; s < len(order)-1; s++ {
			i := order[s]
			sumL += ys[i]
			sumSqL += ys[i] * ys[i]
			sumR -= ys[i]
			sumSqR -= ys[i] * ys[i]
			nL++
			nR--
			v := feat(xs[i], j)
			next := feat(xs[order[s+1]], j)
			if v == next || nL < minLeaf || nR < minLeaf {
				continue
			}
			sse := (sumSqL - sumL*sumL/float64(nL)) +
				(sumSqR - sumR*sumR/float64(nR))
			gain := baseSSE - sse
			if gain > bestGain {
				bestGain = gain
				bestFeat = j
				bestThr = (v + next) / 2
			}
		}
	}
	if bestFeat < 0 || bestGain <= 1e-12 {
		return node
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if feat(xs[i], bestFeat) <= bestThr {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return node
	}
	node.feature = bestFeat
	node.threshold = bestThr
	node.left = growTree(xs, ys, leftIdx, depth-1, minLeaf)
	node.right = growTree(xs, ys, rightIdx, depth-1, minLeaf)
	return node
}

func meanAt(ys []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += ys[i]
	}
	return s / float64(len(idx))
}

func sseAt(ys []float64, idx []int, mean float64) float64 {
	var s float64
	for _, i := range idx {
		d := ys[i] - mean
		s += d * d
	}
	return s
}

// GradientBoosting is a gradient-boosted ensemble of shallow regression
// trees fit to least-squares residuals — the "boosting-based ensemble
// models" the paper cites ([41] Friedman, [42] XGBoost) as candidate
// inference models (RT3.3).
type GradientBoosting struct {
	// Rounds is the number of boosting stages (default 50).
	Rounds int
	// LearningRate shrinks each stage (default 0.1).
	LearningRate float64
	// MaxDepth is the per-tree depth (default 2).
	MaxDepth int
	// MinLeaf is per-tree minimum leaf size (default 2).
	MinLeaf int

	base  float64
	trees []*RegressionTree
}

// Fit trains the ensemble.
func (g *GradientBoosting) Fit(xs [][]float64, ys []float64) error {
	if len(xs) == 0 || len(ys) < len(xs) {
		return fmt.Errorf("gradient boosting fit: %w", ErrNoData)
	}
	rounds := g.Rounds
	if rounds <= 0 {
		rounds = 50
	}
	lr := g.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	depth := g.MaxDepth
	if depth <= 0 {
		depth = 2
	}
	g.base = Mean(ys[:len(xs)])
	g.trees = g.trees[:0]
	resid := make([]float64, len(xs))
	pred := make([]float64, len(xs))
	for i := range pred {
		pred[i] = g.base
	}
	for r := 0; r < rounds; r++ {
		for i := range resid {
			resid[i] = ys[i] - pred[i]
		}
		t := &RegressionTree{MaxDepth: depth, MinLeaf: g.MinLeaf}
		if err := t.Fit(xs, resid); err != nil {
			return err
		}
		g.trees = append(g.trees, t)
		var improved bool
		for i, x := range xs {
			delta := lr * t.Predict(x)
			pred[i] += delta
			if delta != 0 {
				improved = true
			}
		}
		if !improved {
			break // residuals exhausted; further rounds are no-ops
		}
	}
	return nil
}

// Predict sums the shrunken stage predictions.
func (g *GradientBoosting) Predict(x []float64) float64 {
	lr := g.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	s := g.base
	for _, t := range g.trees {
		s += lr * t.Predict(x)
	}
	return s
}

// Stages returns the number of trees actually fit.
func (g *GradientBoosting) Stages() int { return len(g.trees) }

// SegmentedRegression fits a piecewise-linear model of a scalar function
// y = f(x) with at most Segments pieces, choosing breakpoints by greedy
// recursive splitting on SSE reduction. The paper proposes exactly this
// form for query-answer explanations (RT4.2: "a (piecewise) linear
// regression model showing how count ... depends on the size of the
// subspace") and cites fast segmented regression [23].
type SegmentedRegression struct {
	// Segments caps the number of linear pieces (default 4).
	Segments int
	// MinPoints is the minimum samples per piece (default 4).
	MinPoints int

	breaks []float64 // ascending interior breakpoints
	pieces []linearPiece
}

type linearPiece struct{ slope, intercept float64 }

// Fit fits the piecewise model to scalar samples (xs[i], ys[i]).
func (sr *SegmentedRegression) Fit(xs, ys []float64) error {
	n := len(xs)
	if n == 0 || len(ys) < n {
		return fmt.Errorf("segmented regression fit: %w", ErrNoData)
	}
	segs := sr.Segments
	if segs <= 0 {
		segs = 4
	}
	minPts := sr.MinPoints
	if minPts <= 0 {
		minPts = 4
	}
	// Sort by x.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return xs[order[a]] < xs[order[b]] })
	sx := make([]float64, n)
	sy := make([]float64, n)
	for i, o := range order {
		sx[i] = xs[o]
		sy[i] = ys[o]
	}
	// Greedy splitting: repeatedly split the segment whose best split
	// yields the largest SSE reduction.
	type span struct{ lo, hi int } // [lo, hi)
	spans := []span{{0, n}}
	for len(spans) < segs {
		bestSpan, bestCut := -1, -1
		bestGain := 1e-12
		for si, sp := range spans {
			if sp.hi-sp.lo < 2*minPts {
				continue
			}
			base := lineSSE(sx, sy, sp.lo, sp.hi)
			for cut := sp.lo + minPts; cut <= sp.hi-minPts; cut++ {
				if sx[cut] == sx[cut-1] {
					continue
				}
				g := base - lineSSE(sx, sy, sp.lo, cut) - lineSSE(sx, sy, cut, sp.hi)
				if g > bestGain {
					bestGain = g
					bestSpan = si
					bestCut = cut
				}
			}
		}
		if bestSpan < 0 {
			break
		}
		sp := spans[bestSpan]
		spans = append(spans[:bestSpan], append([]span{
			{sp.lo, bestCut}, {bestCut, sp.hi},
		}, spans[bestSpan+1:]...)...)
	}
	sort.Slice(spans, func(a, b int) bool { return spans[a].lo < spans[b].lo })
	sr.breaks = sr.breaks[:0]
	sr.pieces = sr.pieces[:0]
	for i, sp := range spans {
		slope, intercept := fitLine(sx, sy, sp.lo, sp.hi)
		sr.pieces = append(sr.pieces, linearPiece{slope, intercept})
		if i > 0 {
			sr.breaks = append(sr.breaks, sx[sp.lo])
		}
	}
	return nil
}

// Predict evaluates the piecewise model at x.
func (sr *SegmentedRegression) Predict(x float64) float64 {
	if len(sr.pieces) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(sr.breaks, x)
	if i >= len(sr.pieces) {
		i = len(sr.pieces) - 1
	}
	p := sr.pieces[i]
	return p.slope*x + p.intercept
}

// Breakpoints returns a copy of the interior breakpoints (ascending).
func (sr *SegmentedRegression) Breakpoints() []float64 {
	return CopyVec(sr.breaks)
}

// Pieces returns the (slope, intercept) pairs of each piece in order.
func (sr *SegmentedRegression) Pieces() (slopes, intercepts []float64) {
	for _, p := range sr.pieces {
		slopes = append(slopes, p.slope)
		intercepts = append(intercepts, p.intercept)
	}
	return slopes, intercepts
}

func fitLine(xs, ys []float64, lo, hi int) (slope, intercept float64) {
	n := float64(hi - lo)
	if n == 0 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := lo; i < hi; i++ {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

func lineSSE(xs, ys []float64, lo, hi int) float64 {
	slope, intercept := fitLine(xs, ys, lo, hi)
	var s float64
	for i := lo; i < hi; i++ {
		d := ys[i] - (slope*xs[i] + intercept)
		s += d * d
	}
	return s
}
