package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDotAndDistance(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		dot  float64
		d2   float64
	}{
		{"orthogonal", []float64{1, 0}, []float64{0, 1}, 0, 2},
		{"parallel", []float64{1, 2}, []float64{2, 4}, 10, 5},
		{"empty", nil, nil, 0, 0},
		{"mismatched uses prefix", []float64{1, 2, 3}, []float64{1}, 1, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); got != tt.dot {
				t.Errorf("Dot = %v, want %v", got, tt.dot)
			}
			if got := SquaredDistance(tt.a, tt.b); got != tt.d2 {
				t.Errorf("SquaredDistance = %v, want %v", got, tt.d2)
			}
		})
	}
}

func TestCholeskySolve(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5]
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	x, err := CholeskySolve(a, []float64{10, 8})
	if err != nil {
		t.Fatalf("CholeskySolve: %v", err)
	}
	if math.Abs(x[0]-1.75) > 1e-9 || math.Abs(x[1]-1.5) > 1e-9 {
		t.Errorf("x = %v, want [1.75 1.5]", x)
	}
}

func TestCholeskySolveSingular(t *testing.T) {
	a := NewMatrix(2, 2) // all zeros: singular
	if _, err := CholeskySolve(a, []float64{1, 1}); err == nil {
		t.Fatal("expected ErrSingular for zero matrix")
	}
}

func TestLinearRegressionRecoversPlane(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		xs = append(xs, x)
		ys = append(ys, 3*x[0]-2*x[1]+7)
	}
	var lr LinearRegression
	if err := lr.Fit(xs, ys); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	w := lr.Weights()
	if math.Abs(w[0]-3) > 1e-6 || math.Abs(w[1]+2) > 1e-6 {
		t.Errorf("weights = %v, want [3 -2]", w)
	}
	if math.Abs(lr.Intercept()-7) > 1e-5 {
		t.Errorf("intercept = %v, want 7", lr.Intercept())
	}
	if got := lr.Predict([]float64{1, 1}); math.Abs(got-8) > 1e-5 {
		t.Errorf("Predict = %v, want 8", got)
	}
}

func TestLinearRegressionNoData(t *testing.T) {
	var lr LinearRegression
	if err := lr.Fit(nil, nil); err == nil {
		t.Fatal("expected error on empty fit")
	}
	if got := lr.Predict([]float64{1}); got != 0 {
		t.Errorf("unfitted Predict = %v, want 0", got)
	}
}

func TestRLSConvergesToPlane(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := NewRLS(2, 1.0, 1000)
	for i := 0; i < 500; i++ {
		x := []float64{rng.Float64() * 4, rng.Float64() * 4}
		y := 5*x[0] + 1*x[1] - 3
		r.Observe(x, y)
	}
	if got := r.Predict([]float64{2, 2}); math.Abs(got-9) > 1e-3 {
		t.Errorf("Predict = %v, want 9", got)
	}
	w := r.Weights()
	if math.Abs(w[0]-5) > 1e-2 || math.Abs(w[1]-1) > 1e-2 {
		t.Errorf("weights = %v, want [5 1 -3]", w)
	}
}

func TestRLSForgettingTracksDrift(t *testing.T) {
	r := NewRLS(1, 0.9, 1000)
	// First regime: y = x.
	for i := 0; i < 200; i++ {
		x := float64(i%10) + 1
		r.Observe([]float64{x}, x)
	}
	// Second regime: y = 10x. With forgetting, the model should follow.
	for i := 0; i < 200; i++ {
		x := float64(i%10) + 1
		r.Observe([]float64{x}, 10*x)
	}
	got := r.Predict([]float64{5})
	if math.Abs(got-50) > 1 {
		t.Errorf("after drift Predict(5) = %v, want ~50", got)
	}
}

func TestRLSSetWeights(t *testing.T) {
	r := NewRLS(2, 1, 100)
	r.SetWeights([]float64{1, 2, 3})
	if got := r.Predict([]float64{1, 1}); got != 6 {
		t.Errorf("Predict = %v, want 6", got)
	}
}

func TestKMeansSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var xs [][]float64
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	for i := 0; i < 300; i++ {
		c := centers[i%3]
		xs = append(xs, []float64{
			c[0] + rng.NormFloat64()*0.5,
			c[1] + rng.NormFloat64()*0.5,
		})
	}
	km := KMeans{K: 3}
	if err := km.Fit(xs, rng); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if km.Distortion(xs) > 2 {
		t.Errorf("distortion %v too high; centroids %v", km.Distortion(xs), km.Centroids())
	}
	// Every true centre should have a centroid within distance 1.
	for _, c := range centers {
		_, d2 := NearestCentroid(km.Centroids(), c)
		if d2 > 1 {
			t.Errorf("no centroid near %v (d2=%v)", c, d2)
		}
	}
}

func TestKMeansKLargerThanData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := [][]float64{{1}, {2}}
	km := KMeans{K: 10}
	if err := km.Fit(xs, rng); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if len(km.Centroids()) > 2 {
		t.Errorf("centroids = %d, want <= 2", len(km.Centroids()))
	}
}

func TestOnlineAVQSpawnsAndPurges(t *testing.T) {
	q := NewOnlineAVQ(4, 10)
	for i := 0; i < 50; i++ {
		q.Observe([]float64{0, 0})
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	q.Observe([]float64{100, 100}) // far away -> spawn
	if q.Len() != 2 {
		t.Fatalf("after far point Len = %d, want 2", q.Len())
	}
	// Keep hitting the first prototype; the second goes stale.
	for i := 0; i < 100; i++ {
		q.Observe([]float64{0, 0})
	}
	removed := q.PurgeStale(50)
	if len(removed) != 1 || q.Len() != 1 {
		t.Errorf("PurgeStale removed %v, Len=%d; want 1 removal", removed, q.Len())
	}
}

func TestOnlineAVQTracksMean(t *testing.T) {
	q := NewOnlineAVQ(0, 1) // no spawning: single prototype
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		q.Observe([]float64{3 + rng.NormFloat64()*0.1, -2 + rng.NormFloat64()*0.1})
	}
	p := q.Prototypes()[0]
	if math.Abs(p[0]-3) > 0.1 || math.Abs(p[1]+2) > 0.1 {
		t.Errorf("prototype = %v, want ~[3 -2]", p)
	}
}

func TestKNNRegressor(t *testing.T) {
	xs := [][]float64{{0}, {1}, {2}, {10}, {11}, {12}}
	ys := []float64{0, 0, 0, 100, 100, 100}
	k := KNNRegressor{K: 3}
	if err := k.Fit(xs, ys); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got := k.Predict([]float64{1}); got != 0 {
		t.Errorf("Predict(1) = %v, want 0", got)
	}
	if got := k.Predict([]float64{11}); got != 100 {
		t.Errorf("Predict(11) = %v, want 100", got)
	}
}

func TestKNNRegressorWeighted(t *testing.T) {
	xs := [][]float64{{0}, {10}}
	ys := []float64{0, 100}
	k := KNNRegressor{K: 2, Weighted: true}
	if err := k.Fit(xs, ys); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// Close to x=0 the weighted estimate should be near 0, not 50.
	if got := k.Predict([]float64{0.1}); got > 10 {
		t.Errorf("weighted Predict(0.1) = %v, want near 0", got)
	}
}

func TestKNNClassifier(t *testing.T) {
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {5, 5}, {5, 6}, {6, 5}}
	labels := []int{0, 0, 0, 1, 1, 1}
	c := KNNClassifier{K: 3}
	if err := c.Fit(xs, labels); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got := c.Predict([]float64{0.2, 0.2}); got != 0 {
		t.Errorf("Predict = %d, want 0", got)
	}
	if got := c.Predict([]float64{5.5, 5.5}); got != 1 {
		t.Errorf("Predict = %d, want 1", got)
	}
}

func TestRegressionTreeFitsStep(t *testing.T) {
	var xs [][]float64
	var ys []float64
	for i := 0; i < 100; i++ {
		x := float64(i)
		xs = append(xs, []float64{x})
		if x < 50 {
			ys = append(ys, 1)
		} else {
			ys = append(ys, 9)
		}
	}
	tr := RegressionTree{MaxDepth: 2}
	if err := tr.Fit(xs, ys); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got := tr.Predict([]float64{10}); math.Abs(got-1) > 1e-9 {
		t.Errorf("Predict(10) = %v, want 1", got)
	}
	if got := tr.Predict([]float64{90}); math.Abs(got-9) > 1e-9 {
		t.Errorf("Predict(90) = %v, want 9", got)
	}
	if tr.Depth() < 1 {
		t.Errorf("Depth = %d, want >= 1", tr.Depth())
	}
}

func TestGradientBoostingBeatsMeanOnNonlinear(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 300; i++ {
		x := rng.Float64() * 6
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(x)*5)
	}
	gb := GradientBoosting{Rounds: 80, LearningRate: 0.2, MaxDepth: 2}
	if err := gb.Fit(xs, ys); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	var pred, truth []float64
	for i := 0; i < 100; i++ {
		x := float64(i) * 0.06
		pred = append(pred, gb.Predict([]float64{x}))
		truth = append(truth, math.Sin(x)*5)
	}
	if r2 := R2(pred, truth); r2 < 0.8 {
		t.Errorf("R2 = %v, want >= 0.8 (stages=%d)", r2, gb.Stages())
	}
}

func TestSegmentedRegressionFindsBreak(t *testing.T) {
	var xs, ys []float64
	for i := 0; i < 100; i++ {
		x := float64(i) / 10
		xs = append(xs, x)
		if x < 5 {
			ys = append(ys, 2*x)
		} else {
			ys = append(ys, 10-3*(x-5))
		}
	}
	sr := SegmentedRegression{Segments: 2, MinPoints: 5}
	if err := sr.Fit(xs, ys); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	brs := sr.Breakpoints()
	if len(brs) != 1 || math.Abs(brs[0]-5) > 0.5 {
		t.Errorf("breakpoints = %v, want [~5]", brs)
	}
	if got := sr.Predict(2); math.Abs(got-4) > 0.2 {
		t.Errorf("Predict(2) = %v, want ~4", got)
	}
	if got := sr.Predict(8); math.Abs(got-1) > 0.3 {
		t.Errorf("Predict(8) = %v, want ~1", got)
	}
}

func TestEvalMetrics(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 2, 5}
	if got := MAE(pred, truth); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("MAE = %v", got)
	}
	if got := RMSE(pred, truth); math.Abs(got-math.Sqrt(4.0/3)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	if got := MAPE(pred, truth); math.Abs(got-(2.0/5)/3) > 1e-12 {
		t.Errorf("MAPE = %v", got)
	}
	if got := R2(truth, truth); got != 1 {
		t.Errorf("R2(perfect) = %v, want 1", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestSelectModelPrefersLinearOnLinearData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 120; i++ {
		x := []float64{rng.Float64() * 10}
		xs = append(xs, x)
		ys = append(ys, 4*x[0]+1)
	}
	factories := map[string]func() Regressor{
		"linear": func() Regressor { return &LinearRegression{} },
		"knn":    func() Regressor { return &KNNRegressor{K: 5} },
	}
	best, scores, err := SelectModel(factories, xs, ys, 5, rng)
	if err != nil {
		t.Fatalf("SelectModel: %v", err)
	}
	if best != "linear" {
		t.Errorf("best = %q (scores %v), want linear", best, scores)
	}
}

func TestStandardScaler(t *testing.T) {
	xs := [][]float64{{0, 100}, {10, 200}}
	var s StandardScaler
	if err := s.Fit(xs); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	out := s.Transform([]float64{5, 150})
	if math.Abs(out[0]) > 1e-12 || math.Abs(out[1]) > 1e-12 {
		t.Errorf("Transform(centre) = %v, want zeros", out)
	}
}

// Property: correlation is symmetric and bounded in [-1, 1].
func TestCorrelationProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		c1 := Correlation(x, y)
		c2 := Correlation(y, x)
		return math.Abs(c1-c2) < 1e-12 && c1 >= -1-1e-12 && c1 <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cost of perfectly correlated series is 1.
func TestCorrelationPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if got := Correlation(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("Correlation = %v, want 1", got)
	}
}

// Property: RLS prediction after n observations of an exact linear
// function matches the function on the observed points.
func TestRLSExactRecoveryProperty(t *testing.T) {
	f := func(a, b int8) bool {
		w0 := float64(a) / 8
		w1 := float64(b) / 8
		r := NewRLS(1, 1, 1e6)
		rng := rand.New(rand.NewSource(int64(a)*256 + int64(b)))
		for i := 0; i < 200; i++ {
			x := rng.Float64() * 10
			r.Observe([]float64{x}, w0*x+w1)
		}
		got := r.Predict([]float64{5})
		return math.Abs(got-(w0*5+w1)) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPolyFeatures(t *testing.T) {
	got := PolyFeatures([]float64{2, 3})
	want := []float64{2, 3, 4, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PolyFeatures[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if PolyDim(2) != 5 {
		t.Errorf("PolyDim(2) = %d, want 5", PolyDim(2))
	}
}
