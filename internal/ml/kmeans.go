package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// KMeans clusters points into K groups with Lloyd's algorithm and
// k-means++ seeding. It is the batch query-space quantiser of RT1.1: SEA
// partitions the stream of analyst queries into "query quanta", each of
// which gets its own answer model.
type KMeans struct {
	// K is the number of clusters.
	K int
	// MaxIter bounds Lloyd iterations (default 50).
	MaxIter int

	centroids [][]float64
	sizes     []int
}

// Fit clusters xs. rng drives the k-means++ seeding; deterministic for a
// fixed seed.
func (km *KMeans) Fit(xs [][]float64, rng *rand.Rand) error {
	if len(xs) == 0 {
		return fmt.Errorf("kmeans fit: %w", ErrNoData)
	}
	k := km.K
	if k < 1 {
		k = 1
	}
	if k > len(xs) {
		k = len(xs)
	}
	maxIter := km.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	d := len(xs[0])
	centroids := kmeansPlusPlusSeed(xs, k, rng)
	assign := make([]int, len(xs))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, x := range xs {
			best, _ := NearestCentroid(centroids, x)
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		counts := make([]int, k)
		for c := range centroids {
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
		}
		for i, x := range xs {
			c := assign[i]
			counts[c]++
			AXPY(1, x, centroids[c])
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(centroids[c], xs[rng.Intn(len(xs))])
				continue
			}
			Scale(1/float64(counts[c]), centroids[c])
		}
		km.sizes = counts
	}
	if km.sizes == nil {
		km.sizes = make([]int, k)
		for _, a := range assign {
			km.sizes[a]++
		}
	}
	_ = d
	km.centroids = centroids
	return nil
}

// Centroids returns copies of the fitted centroids.
func (km *KMeans) Centroids() [][]float64 {
	out := make([][]float64, len(km.centroids))
	for i, c := range km.centroids {
		out[i] = CopyVec(c)
	}
	return out
}

// Sizes returns the final cluster populations.
func (km *KMeans) Sizes() []int {
	out := make([]int, len(km.sizes))
	copy(out, km.sizes)
	return out
}

// Assign returns the index of the centroid nearest to x.
func (km *KMeans) Assign(x []float64) int {
	i, _ := NearestCentroid(km.centroids, x)
	return i
}

// Distortion returns the mean squared distance of xs to their assigned
// centroids — the quantisation-quality score used by maintenance logic.
func (km *KMeans) Distortion(xs [][]float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		_, d2 := NearestCentroid(km.centroids, x)
		s += d2
	}
	return s / float64(len(xs))
}

// NearestCentroid returns the index of and squared distance to the
// centroid nearest to x. An empty centroid set returns (-1, +Inf).
func NearestCentroid(centroids [][]float64, x []float64) (int, float64) {
	best := -1
	bestD := math.Inf(1)
	for i, c := range centroids {
		d := SquaredDistance(c, x)
		if d < bestD {
			bestD = d
			best = i
		}
	}
	return best, bestD
}

func kmeansPlusPlusSeed(xs [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, CopyVec(xs[rng.Intn(len(xs))]))
	dist := make([]float64, len(xs))
	for len(centroids) < k {
		var total float64
		for i, x := range xs {
			_, d2 := NearestCentroid(centroids, x)
			dist[i] = d2
			total += d2
		}
		if total == 0 {
			// All points coincide with centroids; duplicate one.
			centroids = append(centroids, CopyVec(xs[rng.Intn(len(xs))]))
			continue
		}
		target := rng.Float64() * total
		var cum float64
		pick := len(xs) - 1
		for i, d2 := range dist {
			cum += d2
			if cum >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, CopyVec(xs[pick]))
	}
	return centroids
}

// OnlineAVQ is an online adaptive vector quantiser: competitive learning
// with a decaying per-prototype learning rate and growth. This is the
// streaming counterpart of KMeans used by the live SEA agent (RT1.1
// "learn the structure of the query space ... as interests shift with
// time"): prototypes migrate toward the current query mass, new
// prototypes are spawned when a query is far from all existing ones, and
// stale prototypes can be purged.
type OnlineAVQ struct {
	// SpawnDistance is the squared distance beyond which a new prototype
	// is created instead of moving the winner (0 disables growth).
	SpawnDistance float64
	// MaxPrototypes caps growth (default 64).
	MaxPrototypes int
	// LearningRate0 is the initial per-prototype step (default 0.5).
	LearningRate0 float64

	protos [][]float64
	counts []int64
	age    []int64 // observations since last win, for purging
	clock  int64

	// grid is the exact uniform-cell prototype index (see index.go):
	// built lazily once the prototype set outgrows a linear scan,
	// maintained incrementally by Observe, dropped (and lazily rebuilt)
	// by PurgeStale. nil means "scan linearly".
	grid *protoGrid
	// noGrid force-disables the index; tests use it to diff the indexed
	// quantiser against the pure linear-scan reference.
	noGrid bool
}

// NewOnlineAVQ constructs a quantiser. spawnDist is a squared distance.
func NewOnlineAVQ(spawnDist float64, maxProtos int) *OnlineAVQ {
	if maxProtos <= 0 {
		maxProtos = 64
	}
	return &OnlineAVQ{
		SpawnDistance: spawnDist,
		MaxPrototypes: maxProtos,
		LearningRate0: 0.5,
	}
}

// Observe folds x into the quantiser and returns the index of the winning
// (or newly spawned) prototype. The prototype index is maintained in
// step: spawns insert, a migrating winner is re-bucketed.
func (q *OnlineAVQ) Observe(x []float64) int {
	q.clock++
	if len(q.protos) == 0 {
		q.protos = append(q.protos, CopyVec(x))
		q.counts = append(q.counts, 1)
		q.age = append(q.age, 0)
		return 0
	}
	q.ensureGrid()
	win, d2 := q.nearest(x)
	if q.SpawnDistance > 0 && d2 > q.SpawnDistance && len(q.protos) < q.MaxPrototypes {
		q.protos = append(q.protos, CopyVec(x))
		q.counts = append(q.counts, 1)
		q.age = append(q.age, 0)
		if q.grid != nil && !q.grid.insert(q.protos[len(q.protos)-1]) {
			q.grid = nil
		}
		return len(q.protos) - 1
	}
	q.counts[win]++
	q.age[win] = 0
	for i := range q.age {
		if i != win {
			q.age[i]++
		}
	}
	// Harmonic-decay step keeps prototypes at the running mean of their
	// wins while staying responsive to drift.
	lr := q.LearningRate0 / (1 + float64(q.counts[win])*q.LearningRate0)
	p := q.protos[win]
	for j := 0; j < len(p) && j < len(x); j++ {
		p[j] += lr * (x[j] - p[j])
	}
	if q.grid != nil && !q.grid.update(win, p) {
		q.grid = nil
	}
	return win
}

// Assign returns the nearest prototype's index and squared distance
// without updating ANY state — it is a pure read, safe for concurrent
// callers as long as Observe/PurgeStale are externally serialised
// against them (the SEA agent holds its RWMutex accordingly). It is
// bit-identical to a NearestCentroid scan over Prototypes(); the grid
// index only accelerates it.
func (q *OnlineAVQ) Assign(x []float64) (int, float64) {
	return q.nearest(x)
}

// nearest is the indexed nearest-prototype lookup with linear-scan
// fallback whenever the grid is absent or cannot prove the winner.
// Pure read: all index mutation lives in Observe/ensureGrid.
func (q *OnlineAVQ) nearest(x []float64) (int, float64) {
	if q.grid != nil {
		if best, bestD, ok := q.grid.nearest(q.protos, x); ok {
			return best, bestD
		}
	}
	return NearestCentroid(q.protos, x)
}

// ensureGrid lazily builds the prototype index once the set is big
// enough for it to pay off. Cell side = sqrt(SpawnDistance): prototypes
// spawn at least that far apart, so occupied cells stay sparse and the
// winner is almost always within one ring.
func (q *OnlineAVQ) ensureGrid() {
	if q.grid != nil || q.noGrid || q.SpawnDistance <= 0 || len(q.protos) < gridMinProtos {
		return
	}
	dims := len(q.protos[0])
	if dims > gridMaxDims {
		dims = gridMaxDims
	}
	if dims == 0 {
		return
	}
	q.grid = newProtoGrid(math.Sqrt(q.SpawnDistance), dims, q.protos)
}

// Prototypes returns copies of the current prototypes.
func (q *OnlineAVQ) Prototypes() [][]float64 {
	out := make([][]float64, len(q.protos))
	for i, p := range q.protos {
		out[i] = CopyVec(p)
	}
	return out
}

// Len returns the number of prototypes.
func (q *OnlineAVQ) Len() int { return len(q.protos) }

// Count returns the win count of prototype i.
func (q *OnlineAVQ) Count(i int) int64 {
	if i < 0 || i >= len(q.counts) {
		return 0
	}
	return q.counts[i]
}

// AVQState is the complete serialisable state of an OnlineAVQ quantiser.
// A quantiser restored from its state assigns and observes bit-identically
// to the original, so shipped agents keep the donor's query-space
// partitioning exactly.
type AVQState struct {
	SpawnDistance float64     `json:"spawn_distance"`
	MaxPrototypes int         `json:"max_prototypes"`
	LearningRate0 float64     `json:"learning_rate0"`
	Prototypes    [][]float64 `json:"prototypes"`
	Counts        []int64     `json:"counts"`
	Age           []int64     `json:"age"`
	Clock         int64       `json:"clock"`
}

// State exports the quantiser's full state (copies, no aliasing).
func (q *OnlineAVQ) State() AVQState {
	counts := make([]int64, len(q.counts))
	copy(counts, q.counts)
	age := make([]int64, len(q.age))
	copy(age, q.age)
	return AVQState{
		SpawnDistance: q.SpawnDistance,
		MaxPrototypes: q.MaxPrototypes,
		LearningRate0: q.LearningRate0,
		Prototypes:    q.Prototypes(),
		Counts:        counts,
		Age:           age,
		Clock:         q.clock,
	}
}

// NewOnlineAVQFromState rebuilds a quantiser from an exported state.
func NewOnlineAVQFromState(st AVQState) (*OnlineAVQ, error) {
	if len(st.Counts) != len(st.Prototypes) || len(st.Age) != len(st.Prototypes) {
		return nil, fmt.Errorf("%w: AVQ state with %d prototypes, %d counts, %d ages",
			ErrDimensionMismatch, len(st.Prototypes), len(st.Counts), len(st.Age))
	}
	q := NewOnlineAVQ(st.SpawnDistance, st.MaxPrototypes)
	q.LearningRate0 = st.LearningRate0
	q.clock = st.Clock
	for i, p := range st.Prototypes {
		q.protos = append(q.protos, CopyVec(p))
		q.counts = append(q.counts, st.Counts[i])
		q.age = append(q.age, st.Age[i])
	}
	return q, nil
}

// PurgeStale removes prototypes that have not won in the last maxAge
// observations and returns the indices (into the pre-purge ordering) that
// were removed; the SEA agent discards the matching answer models
// ("purging older models", RT5.3). The relative order of survivors is
// preserved.
func (q *OnlineAVQ) PurgeStale(maxAge int64) []int {
	var removed []int
	var protos [][]float64
	var counts, ages []int64
	for i := range q.protos {
		if q.age[i] > maxAge && len(q.protos)-len(removed) > 1 {
			removed = append(removed, i)
			continue
		}
		protos = append(protos, q.protos[i])
		counts = append(counts, q.counts[i])
		ages = append(ages, q.age[i])
	}
	q.protos, q.counts, q.age = protos, counts, ages
	// Purging renumbers the survivors; drop the index and let the next
	// lookup rebuild it over the compacted set.
	q.grid = nil
	return removed
}
