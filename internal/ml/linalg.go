// Package ml is the statistical machine-learning substrate for SEA. The
// paper's data-less paradigm (§III.B) rests on "statistical machine
// learning (SML) models" trained on (query, answer) pairs; this package
// provides those models from scratch on the standard library: dense linear
// algebra, ordinary/ridge least squares, recursive least squares for
// online updates, k-means (batch and online adaptive vector quantisation),
// kNN regression/classification, CART trees, gradient-boosted stumps, and
// segmented (piecewise-linear) regression.
//
// All estimators are deterministic given a seeded *rand.Rand and are safe
// for single-goroutine simulation use; estimators that support concurrent
// prediction after training say so explicitly.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when vector or matrix shapes disagree.
var ErrDimensionMismatch = errors.New("ml: dimension mismatch")

// ErrSingular is returned when a linear system is (numerically) singular.
var ErrSingular = errors.New("ml: singular matrix")

// ErrNoData is returned when an estimator is fit on an empty dataset.
var ErrNoData = errors.New("ml: no training data")

// Dot returns the inner product of a and b. Panics are avoided: mismatched
// lengths use the shorter prefix, which callers guard against via FitCheck
// helpers; in practice all call sites pass equal-length slices.
func Dot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// SquaredDistance returns the squared Euclidean distance between a and b.
func SquaredDistance(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Distance returns the Euclidean distance between a and b.
func Distance(a, b []float64) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// AXPY computes y[i] += alpha*x[i] in place.
func AXPY(alpha float64, x, y []float64) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	for i := 0; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// CopyVec returns a fresh copy of x (boundary-safety helper: callers hand
// out copies rather than aliases, per the style guide).
func CopyVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Matrix is a dense row-major matrix. The zero value is an empty matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MulVec computes m * x and returns a new vector.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("%w: matrix %dx%d times vector %d",
			ErrDimensionMismatch, m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out, nil
}

// CholeskySolve solves the symmetric positive-definite system A x = b in
// place using a Cholesky factorisation. A must be n x n and is destroyed.
// It returns ErrSingular when a pivot collapses below tolerance.
func CholeskySolve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("%w: cholesky on %dx%d with rhs %d",
			ErrDimensionMismatch, a.Rows, a.Cols, len(b))
	}
	const tol = 1e-12
	// Factor A = L L^T, storing L in the lower triangle.
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			l := a.At(j, k)
			d -= l * l
		}
		if d < tol {
			return nil, fmt.Errorf("%w: pivot %d = %g", ErrSingular, j, d)
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, s/d)
		}
	}
	// Forward solve L y = b.
	x := make([]float64, n)
	copy(x, b)
	for i := 0; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= a.At(i, k) * x[k]
		}
		x[i] = s / a.At(i, i)
	}
	// Back solve L^T x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= a.At(k, i) * x[k]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Correlation returns the Pearson correlation coefficient of paired
// samples x and y (using the shorter length), or 0 when undefined.
func Correlation(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n < 2 {
		return 0
	}
	mx := Mean(x[:n])
	my := Mean(y[:n])
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
