// Package rankjoin implements the top-K rank-join operator the paper uses
// as its flagship P3 result (ref [30], "Rank join queries in NoSQL
// databases"): join two tables on key, rank joined pairs by the sum of
// their scores, return the best K.
//
// Two implementations are provided:
//
//   - MapReduce: the state-of-the-art-circa-the-paper baseline — a full
//     reduce-side join of both tables followed by a global sort, touching
//     every row of both tables and shuffling everything.
//
//   - Threshold: the paper's approach — per-partition score-sorted runs
//     plus statistical indexes (internal/index.RankIndex) let a
//     coordinator pull shallow prefixes of each run in rounds, maintain
//     the classic rank-join threshold, and stop as soon as the K-th best
//     joined score beats any undiscovered pair. Only the pulled prefixes
//     are read or moved ("surgical access"), which is where the paper's
//     up-to-6-orders-of-magnitude claim comes from.
package rankjoin

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// ErrBadK is returned for non-positive K.
var ErrBadK = errors.New("rankjoin: k must be positive")

// Pair is one joined result.
type Pair struct {
	// Key is the join key.
	Key uint64
	// ScoreR and ScoreS are the two sides' scores.
	ScoreR, ScoreS float64
}

// Combined returns the pair's ranking score.
func (p Pair) Combined() float64 { return p.ScoreR + p.ScoreS }

// Operator executes rank joins between two tables whose score lives in
// the given column.
type Operator struct {
	eng      *engine.Engine
	r, s     *storage.Table
	scoreCol int
	idxR     *index.RankIndex
	idxS     *index.RankIndex
	// BatchRows is the per-round prefix deepening of the threshold
	// algorithm (ablation A4); default 64.
	BatchRows int
}

// New builds the operator and its rank indexes (offline step: sorts
// partitions by score and builds histograms).
func New(eng *engine.Engine, r, s *storage.Table, scoreCol int) (*Operator, error) {
	idxR, err := index.BuildRankIndex(r, scoreCol, 64)
	if err != nil {
		return nil, fmt.Errorf("rankjoin: index R: %w", err)
	}
	idxS, err := index.BuildRankIndex(s, scoreCol, 64)
	if err != nil {
		return nil, fmt.Errorf("rankjoin: index S: %w", err)
	}
	return &Operator{
		eng: eng, r: r, s: s,
		scoreCol: scoreCol,
		idxR:     idxR, idxS: idxS,
		BatchRows: 64,
	}, nil
}

// MapReduce answers the top-K rank join with a full reduce-side join: two
// complete table scans (with job overheads), a shuffle of every row, the
// join, and a sort of all joined pairs.
func (o *Operator) MapReduce(k int) ([]Pair, metrics.Cost, error) {
	if k < 1 {
		return nil, metrics.Cost{}, ErrBadK
	}
	// Tag values so the reducer can tell the sides apart: tag 0 = R.
	mkMapper := func(tag float64) engine.Mapper {
		col := o.scoreCol
		return func(row storage.Row, emit func(engine.KV)) {
			score := 0.0
			if col < len(row.Vec) {
				score = row.Vec[col]
			}
			emit(engine.KV{Key: row.Key, Value: []float64{tag, score}})
		}
	}
	joinReducer := func(key uint64, values [][]float64) [][]float64 {
		var rs, ss []float64
		for _, v := range values {
			if len(v) < 2 {
				continue
			}
			if v[0] == 0 {
				rs = append(rs, v[1])
			} else {
				ss = append(ss, v[1])
			}
		}
		var out [][]float64
		for _, a := range rs {
			for _, b := range ss {
				out = append(out, []float64{a, b})
			}
		}
		return out
	}

	// Two "jobs" (one per table) feed one logical reduce-side join. The
	// simulator runs them as two MapReduce passes whose intermediate
	// outputs are unioned before reduction; costs add sequentially, as a
	// real two-input Hadoop join would schedule them.
	union := make(map[uint64][][]float64)
	collect := func(t *storage.Table, tag float64) (metrics.Cost, error) {
		m := mkMapper(tag)
		passThrough := func(key uint64, values [][]float64) [][]float64 { return values }
		out, cost, err := o.eng.MapReduce(t, m, passThrough)
		if err != nil {
			return cost, err
		}
		for _, kv := range out {
			union[kv.Key] = append(union[kv.Key], kv.Value)
		}
		return cost, nil
	}
	costR, err := collect(o.r, 0)
	if err != nil {
		return nil, costR, fmt.Errorf("rankjoin mapreduce: %w", err)
	}
	costS, err := collect(o.s, 1)
	if err != nil {
		return nil, costR.Add(costS), fmt.Errorf("rankjoin mapreduce: %w", err)
	}
	total := costR.Add(costS)

	var pairs []Pair
	var joinedRows int64
	keys := make([]uint64, 0, len(union))
	for key := range union {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		for _, v := range joinReducer(key, union[key]) {
			pairs = append(pairs, Pair{Key: key, ScoreR: v[0], ScoreS: v[1]})
			joinedRows++
		}
	}
	// Join compute + the sort pass over all joined pairs.
	total = total.Add(o.eng.Cluster().CPUCost(joinedRows))
	total = total.Add(o.eng.Cluster().TransferLAN(joinedRows * 24))
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Combined() != pairs[j].Combined() {
			return pairs[i].Combined() > pairs[j].Combined()
		}
		return pairs[i].Key < pairs[j].Key
	})
	if len(pairs) > k {
		pairs = pairs[:k]
	}
	total.RowsReturned = int64(len(pairs))
	return pairs, total, nil
}

// Threshold answers the top-K rank join with the index-guided pull
// algorithm. Rounds deepen each partition's sorted-run prefix by
// BatchRows; the classic rank-join threshold (best-unseen-R +
// best-unseen-S) decides termination.
func (o *Operator) Threshold(k int) ([]Pair, metrics.Cost, error) {
	if k < 1 {
		return nil, metrics.Cost{}, ErrBadK
	}
	var total metrics.Cost

	mk := func(t *storage.Table, ri *index.RankIndex) *side {
		s := &side{
			t: t, idx: ri,
			depth:  make([]int, t.Partitions()),
			seen:   make(map[uint64][]float64),
			unseen: make([]float64, t.Partitions()),
		}
		for p := range s.unseen {
			s.unseen[p] = ri.Top(p)
		}
		return s
	}
	sides := [2]*side{mk(o.r, o.idxR), mk(o.s, o.idxS)}

	batch := o.BatchRows
	if batch < 1 {
		batch = 64
	}

	var results []Pair
	kthScore := func() float64 {
		if len(results) < k {
			return negInf
		}
		return results[len(results)-1].Combined()
	}

	insert := func(p Pair) {
		results = append(results, p)
		sort.Slice(results, func(i, j int) bool {
			if results[i].Combined() != results[j].Combined() {
				return results[i].Combined() > results[j].Combined()
			}
			return results[i].Key < results[j].Key
		})
		if len(results) > k {
			results = results[:k]
		}
	}

	maxUnseen := func(s *side) float64 {
		best := negInf
		for p := range s.unseen {
			if s.depth[p] >= s.idx.Rows(p) {
				continue // run exhausted
			}
			if s.unseen[p] > best {
				best = s.unseen[p]
			}
		}
		return best
	}

	for round := 0; ; round++ {
		uR, uS := maxUnseen(sides[0]), maxUnseen(sides[1])
		if uR == negInf && uS == negInf {
			break // both exhausted
		}
		threshold := 0.0
		switch {
		case uR == negInf:
			threshold = sides[0].maxSeenScore() + uS
		case uS == negInf:
			threshold = uR + sides[1].maxSeenScore()
		default:
			threshold = uR + uS
		}
		if kthScore() >= threshold {
			break // no unseen pair can beat the current top-K
		}
		// Pull the next batch from every non-exhausted partition of the
		// side with the higher unseen score (HRJN's pull policy).
		pull := sides[0]
		other := sides[1]
		if uS > uR {
			pull, other = sides[1], sides[0]
		}
		segs := make(map[int]engine.Segment)
		for p := 0; p < pull.t.Partitions(); p++ {
			if pull.depth[p] >= pull.idx.Rows(p) {
				continue
			}
			to := pull.depth[p] + batch
			if to > pull.idx.Rows(p) {
				to = pull.idx.Rows(p)
			}
			segs[p] = engine.Segment{From: pull.depth[p], To: to}
		}
		if len(segs) == 0 {
			break
		}
		got, cost, err := o.eng.CoordinatorSegmentGather(pull.t, segs)
		if err != nil {
			return nil, total, fmt.Errorf("rankjoin threshold: %w", err)
		}
		total = total.Add(cost)
		for p, rows := range got {
			for _, r := range rows {
				score := 0.0
				if o.scoreCol < len(r.Vec) {
					score = r.Vec[o.scoreCol]
				}
				pull.seen[r.Key] = append(pull.seen[r.Key], score)
				// Join against the other side's seen rows.
				for _, os := range other.seen[r.Key] {
					pr := Pair{Key: r.Key}
					if pull == sides[0] {
						pr.ScoreR, pr.ScoreS = score, os
					} else {
						pr.ScoreR, pr.ScoreS = os, score
					}
					insert(pr)
				}
				pull.unseen[p] = score // next unseen is <= last seen
			}
			pull.depth[p] = segs[p].To
		}
	}
	total.RowsReturned = int64(len(results))
	return results, total, nil
}

// side is one input stream of the threshold algorithm: a table with its
// rank index, per-partition pull depths, and the rows seen so far.
type side struct {
	t      *storage.Table
	idx    *index.RankIndex
	depth  []int                // rows pulled so far per partition
	seen   map[uint64][]float64 // key -> scores seen on this side
	unseen []float64            // next unseen score per partition
}

func (s *side) maxSeenScore() float64 {
	best := negInf
	for _, scores := range s.seen {
		for _, sc := range scores {
			if sc > best {
				best = sc
			}
		}
	}
	if best == negInf {
		return 0
	}
	return best
}

const negInf = -1e308
