package rankjoin

import (
	"errors"
	"math"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/workload"
)

// buildOp constructs tables R and S with controlled key overlap so joins
// are non-trivial, and returns the operator plus a brute-force truth
// function.
func buildOp(t *testing.T, nRows int) (*Operator, func(k int) []Pair) {
	t.Helper()
	cl := cluster.New(8, cluster.DefaultConfig())
	eng := engine.New(cl)
	r, err := storage.NewTable(cl, "R", []string{"score"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := storage.NewTable(cl, "S", []string{"score"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(31)
	rowsR := workload.ZipfKeys(rng, nRows, uint64(nRows/2), 1.2, 1, 0)
	rowsS := workload.ZipfKeys(rng, nRows, uint64(nRows/2), 1.2, 1, 0)
	if err := r.Load(rowsR); err != nil {
		t.Fatal(err)
	}
	if err := s.Load(rowsS); err != nil {
		t.Fatal(err)
	}
	op, err := New(eng, r, s, 0)
	if err != nil {
		t.Fatal(err)
	}

	truth := func(k int) []Pair {
		byKeyS := make(map[uint64][]float64)
		for _, row := range rowsS {
			byKeyS[row.Key] = append(byKeyS[row.Key], row.Vec[0])
		}
		var pairs []Pair
		for _, row := range rowsR {
			for _, ss := range byKeyS[row.Key] {
				pairs = append(pairs, Pair{Key: row.Key, ScoreR: row.Vec[0], ScoreS: ss})
			}
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].Combined() != pairs[j].Combined() {
				return pairs[i].Combined() > pairs[j].Combined()
			}
			return pairs[i].Key < pairs[j].Key
		})
		if len(pairs) > k {
			pairs = pairs[:k]
		}
		return pairs
	}
	return op, truth
}

func TestMapReduceMatchesTruth(t *testing.T) {
	op, truth := buildOp(t, 2000)
	for _, k := range []int{1, 5, 20} {
		got, cost, err := op.MapReduce(k)
		if err != nil {
			t.Fatal(err)
		}
		want := truth(k)
		assertPairsEqual(t, got, want)
		if cost.RowsRead < 4000 {
			t.Errorf("k=%d: mapreduce read %d rows, expected full scans", k, cost.RowsRead)
		}
	}
}

func TestThresholdMatchesTruth(t *testing.T) {
	op, truth := buildOp(t, 2000)
	for _, k := range []int{1, 5, 20} {
		got, _, err := op.Threshold(k)
		if err != nil {
			t.Fatal(err)
		}
		want := truth(k)
		assertPairsEqual(t, got, want)
	}
}

// assertPairsEqual compares by combined score (ties can reorder pairs
// with equal scores).
func assertPairsEqual(t *testing.T, got, want []Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Combined()-want[i].Combined()) > 1e-9 {
			t.Fatalf("rank %d: combined %v != %v", i, got[i].Combined(), want[i].Combined())
		}
	}
}

func TestThresholdIsSurgical(t *testing.T) {
	op, _ := buildOp(t, 5000)
	_, mrCost, err := op.MapReduce(10)
	if err != nil {
		t.Fatal(err)
	}
	_, thCost, err := op.Threshold(10)
	if err != nil {
		t.Fatal(err)
	}
	if thCost.RowsRead >= mrCost.RowsRead/2 {
		t.Errorf("threshold read %d rows vs mapreduce %d: not surgical",
			thCost.RowsRead, mrCost.RowsRead)
	}
	if thCost.Time >= mrCost.Time {
		t.Errorf("threshold time %v >= mapreduce %v", thCost.Time, mrCost.Time)
	}
	if thCost.BytesLAN >= mrCost.BytesLAN {
		t.Errorf("threshold moved %d bytes vs mapreduce %d", thCost.BytesLAN, mrCost.BytesLAN)
	}
}

func TestBadK(t *testing.T) {
	op, _ := buildOp(t, 100)
	if _, _, err := op.MapReduce(0); !errors.Is(err, ErrBadK) {
		t.Errorf("MapReduce(0) err = %v", err)
	}
	if _, _, err := op.Threshold(-1); !errors.Is(err, ErrBadK) {
		t.Errorf("Threshold(-1) err = %v", err)
	}
}

func TestThresholdSmallBatch(t *testing.T) {
	op, truth := buildOp(t, 1000)
	op.BatchRows = 8
	got, _, err := op.Threshold(5)
	if err != nil {
		t.Fatal(err)
	}
	assertPairsEqual(t, got, truth(5))
}

func TestThresholdKLargerThanJoin(t *testing.T) {
	// With k larger than the number of joinable pairs, both paths return
	// everything.
	cl := cluster.New(2, cluster.DefaultConfig())
	eng := engine.New(cl)
	r, _ := storage.NewTable(cl, "R", []string{"score"}, 2)
	s, _ := storage.NewTable(cl, "S", []string{"score"}, 2)
	if err := r.Load([]storage.Row{
		{Key: 1, Vec: []float64{0.9}},
		{Key: 2, Vec: []float64{0.5}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Load([]storage.Row{
		{Key: 1, Vec: []float64{0.8}},
		{Key: 3, Vec: []float64{0.7}},
	}); err != nil {
		t.Fatal(err)
	}
	op, err := New(eng, r, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := op.Threshold(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key != 1 {
		t.Errorf("got %v, want single pair key=1", got)
	}
	mr, _, err := op.MapReduce(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(mr) != 1 || mr[0].Key != 1 {
		t.Errorf("mapreduce got %v", mr)
	}
}
