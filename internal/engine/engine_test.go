package engine

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
)

func buildTable(t *testing.T, cl *cluster.Cluster, nRows, nParts int) *storage.Table {
	t.Helper()
	tbl, err := storage.NewTable(cl, "t", []string{"v"}, nParts)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]storage.Row, nRows)
	for i := range rows {
		rows[i] = storage.Row{Key: uint64(i), Vec: []float64{float64(i)}}
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestMapReduceSum(t *testing.T) {
	cl := cluster.New(4, cluster.DefaultConfig())
	e := New(cl)
	tbl := buildTable(t, cl, 100, 8)

	mapper := func(row storage.Row, emit func(KV)) {
		emit(KV{Key: 0, Value: []float64{row.Vec[0]}})
	}
	reducer := func(_ uint64, values [][]float64) [][]float64 {
		var s float64
		for _, v := range values {
			s += v[0]
		}
		return [][]float64{{s}}
	}
	out, cost, err := e.MapReduce(tbl, mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	if got, want := out[0].Value[0], float64(99*100/2); got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	// Every node with data pays framework overhead and all rows scanned.
	if cost.RowsRead != 100 {
		t.Errorf("RowsRead = %d, want 100", cost.RowsRead)
	}
	if cost.NodesTouched != 4 {
		t.Errorf("NodesTouched = %d, want 4", cost.NodesTouched)
	}
	if cost.Time < cluster.DefaultConfig().FrameworkOverhead {
		t.Errorf("Time = %v, want >= framework overhead", cost.Time)
	}
	if cost.BytesLAN == 0 {
		t.Error("shuffle moved no bytes")
	}
}

func TestMapReduceGroupByKey(t *testing.T) {
	cl := cluster.New(2, cluster.DefaultConfig())
	e := New(cl)
	tbl := buildTable(t, cl, 100, 4)
	// Group rows by parity, count each group.
	mapper := func(row storage.Row, emit func(KV)) {
		emit(KV{Key: row.Key % 2, Value: []float64{1}})
	}
	reducer := func(_ uint64, values [][]float64) [][]float64 {
		return [][]float64{{float64(len(values))}}
	}
	out, _, err := e.MapReduce(tbl, mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("groups = %d, want 2", len(out))
	}
	// Keys come back sorted.
	if out[0].Key != 0 || out[1].Key != 1 {
		t.Errorf("keys = %d,%d", out[0].Key, out[1].Key)
	}
	if out[0].Value[0] != 50 || out[1].Value[0] != 50 {
		t.Errorf("counts = %v,%v", out[0].Value[0], out[1].Value[0])
	}
}

func TestCoordinatorGatherSubset(t *testing.T) {
	cl := cluster.New(4, cluster.DefaultConfig())
	e := New(cl)
	tbl := buildTable(t, cl, 400, 8)

	task := func(part []storage.Row) ([][]float64, int64) {
		var s float64
		for _, r := range part {
			s += r.Vec[0]
		}
		return [][]float64{{s}}, int64(len(part))
	}
	results, cost, err := e.CoordinatorGather(tbl, []int{0, 1}, task)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// Only the two partitions' rows should be read, on at most 2 nodes.
	if cost.RowsRead >= 400 {
		t.Errorf("RowsRead = %d, want < 400", cost.RowsRead)
	}
	if cost.NodesTouched > 2 {
		t.Errorf("NodesTouched = %d, want <= 2", cost.NodesTouched)
	}
	// Cohort requests must be far cheaper than a framework launch.
	if cost.Time >= cluster.DefaultConfig().FrameworkOverhead {
		t.Errorf("cohort Time = %v, should beat framework overhead", cost.Time)
	}
}

func TestCoordinatorGatherSurgicalRowCount(t *testing.T) {
	cl := cluster.New(2, cluster.DefaultConfig())
	e := New(cl)
	tbl := buildTable(t, cl, 100, 2)
	// Task claims it only read 3 rows: cost must reflect that.
	task := func(part []storage.Row) ([][]float64, int64) {
		return nil, 3
	}
	_, cost, err := e.CoordinatorGather(tbl, []int{0}, task)
	if err != nil {
		t.Fatal(err)
	}
	if cost.RowsRead != 3 {
		t.Errorf("RowsRead = %d, want 3", cost.RowsRead)
	}
}

func TestCoordinatorPrefixGather(t *testing.T) {
	cl := cluster.New(2, cluster.DefaultConfig())
	e := New(cl)
	tbl := buildTable(t, cl, 100, 2)
	out, cost, err := e.CoordinatorPrefixGather(tbl, map[int]int{0: 5, 1: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0]) != 5 || len(out[1]) != 7 {
		t.Errorf("prefix lens = %d,%d", len(out[0]), len(out[1]))
	}
	if cost.RowsRead != 12 {
		t.Errorf("RowsRead = %d, want 12", cost.RowsRead)
	}
}

func TestMapReduceOnFailedNodeUsesReplica(t *testing.T) {
	cl := cluster.New(4, cluster.DefaultConfig())
	e := New(cl)
	tbl := buildTable(t, cl, 100, 4)
	if err := cl.Fail(2); err != nil {
		t.Fatal(err)
	}
	mapper := func(row storage.Row, emit func(KV)) {
		emit(KV{Key: 0, Value: []float64{1}})
	}
	reducer := func(_ uint64, values [][]float64) [][]float64 {
		return [][]float64{{float64(len(values))}}
	}
	out, _, err := e.MapReduce(tbl, mapper, reducer)
	if err != nil {
		t.Fatalf("MapReduce with one failed node: %v", err)
	}
	if out[0].Value[0] != 100 {
		t.Errorf("count = %v, want 100 (no rows lost)", out[0].Value[0])
	}
}

func TestPointGet(t *testing.T) {
	cl := cluster.New(2, cluster.DefaultConfig())
	e := New(cl)
	tbl := buildTable(t, cl, 50, 4)
	row, ok, cost, err := e.PointGet(tbl, 7)
	if err != nil || !ok || row.Key != 7 {
		t.Fatalf("PointGet: %v %v %v", row, ok, err)
	}
	if cost.Messages == 0 {
		t.Error("point get should cost messages")
	}
}

func TestMapReduceVsCohortCostGap(t *testing.T) {
	// The central quantitative premise of the paper: engaging every node
	// through the full stack costs orders of magnitude more than a
	// surgical cohort request. Verify the simulator reproduces that gap.
	cl := cluster.New(16, cluster.DefaultConfig())
	e := New(cl)
	tbl := buildTable(t, cl, 100_000, 16)

	mapper := func(row storage.Row, emit func(KV)) {}
	reducer := func(_ uint64, values [][]float64) [][]float64 { return nil }
	_, mrCost, err := e.MapReduce(tbl, mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	task := func(part []storage.Row) ([][]float64, int64) { return nil, 10 }
	_, ccCost, err := e.CoordinatorGather(tbl, []int{3}, task)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(mrCost.Time) / float64(ccCost.Time); ratio < 20 {
		t.Errorf("MapReduce/cohort time ratio = %.1f, want >= 20", ratio)
	}
	if mrCost.RowsRead != 100_000 || ccCost.RowsRead != 10 {
		t.Errorf("rows: mr=%d cc=%d", mrCost.RowsRead, ccCost.RowsRead)
	}
}
