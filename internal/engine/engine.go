// Package engine implements the two distributed processing paradigms the
// paper contrasts (RT3.2): a MapReduce-style engine that launches job
// tasks on every node holding data, and a coordinator–cohort engine in
// which a coordinating node engages only selected nodes and pulls only
// selected rows ("surgical access", P3).
//
// Both paradigms run over internal/storage tables and charge their work
// to metrics.Cost values: the MapReduce path pays per-node framework
// overhead, full scans, and a shuffle; the cohort path pays light RPCs to
// just the nodes an index selects. Every experiment contrasting
// "traditional BDAS processing" (Fig. 1) against SEA methods goes through
// this package.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// Engine executes distributed tasks over a cluster.
type Engine struct {
	cl *cluster.Cluster
}

// New creates an engine bound to cl.
func New(cl *cluster.Cluster) *Engine { return &Engine{cl: cl} }

// Cluster returns the underlying cluster.
func (e *Engine) Cluster() *cluster.Cluster { return e.cl }

// KV is one intermediate or final key/value pair of a MapReduce job.
type KV struct {
	// Key groups values for reduction.
	Key uint64
	// Value is the payload vector.
	Value []float64
}

// Bytes returns the pair's serialised size under the fixed-width
// encoding.
func (kv KV) Bytes() int64 { return 8 + 8*int64(len(kv.Value)) }

// Mapper emits zero or more KV pairs for one input row.
type Mapper func(row storage.Row, emit func(KV))

// Reducer folds all values that share a key into zero or more outputs.
type Reducer func(key uint64, values [][]float64) [][]float64

// MapReduce runs a full map → shuffle → reduce pass over every partition
// of t. Cost model, mirroring §II.A's complaints:
//
//   - every node holding data pays FrameworkOverhead (layer traversal),
//   - every partition is scanned in full,
//   - all intermediate pairs cross the LAN in a shuffle,
//   - reducers (spread over the same nodes) pay per-pair compute,
//   - virtual time is the max over parallel nodes plus the shuffle and
//     reduce critical path.
func (e *Engine) MapReduce(t *storage.Table, m Mapper, r Reducer) ([]KV, metrics.Cost, error) {
	var mapPhase metrics.Cost // parallel across nodes
	intermediate := make(map[uint64][][]float64)
	var shuffleBytes int64
	var pairs int64

	nodesSeen := make(map[int]bool)
	for p := 0; p < t.Partitions(); p++ {
		rows, scanCost, err := t.ScanPartition(p)
		if err != nil {
			return nil, metrics.Cost{}, fmt.Errorf("mapreduce on %q: %w", t.Name(), err)
		}
		node, err := t.HostNode(p)
		if err != nil {
			return nil, metrics.Cost{}, fmt.Errorf("mapreduce on %q: %w", t.Name(), err)
		}
		partCost := scanCost
		if !nodesSeen[node] {
			nodesSeen[node] = true
			partCost = partCost.Add(e.cl.FrameworkLaunch())
			partCost.NodesTouched = 1
		} else {
			partCost.NodesTouched = 0 // same node, don't double-count
		}
		for _, row := range rows {
			m(row, func(kv KV) {
				intermediate[kv.Key] = append(intermediate[kv.Key], kv.Value)
				shuffleBytes += kv.Bytes()
				pairs++
			})
		}
		mapPhase = mapPhase.Merge(partCost)
	}

	shuffle := e.cl.TransferLAN(shuffleBytes)
	// The shuffle is all-to-all: charge one message per participating
	// node pair direction, approximated as one transfer per node.
	shuffle.Messages = int64(len(nodesSeen))

	reduceCost := e.cl.CPUCost(pairs)
	var out []KV
	keys := make([]uint64, 0, len(intermediate))
	for k := range intermediate {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		for _, v := range r(k, intermediate[k]) {
			out = append(out, KV{Key: k, Value: v})
		}
	}
	var outBytes int64
	for _, kv := range out {
		outBytes += kv.Bytes()
	}
	collect := e.cl.TransferLAN(outBytes)

	total := mapPhase.Add(shuffle).Add(reduceCost).Add(collect)
	total.RowsReturned = int64(len(out))
	return out, total, nil
}

// CohortTask is executed "on" a cohort node against one partition. It
// returns the produced result vectors and how many rows of the partition
// it actually read (surgical access reads fewer than len(part)).
type CohortTask func(part []storage.Row) (results [][]float64, rowsRead int64)

// CohortResult is one partition's contribution to a coordinator-cohort
// request.
type CohortResult struct {
	// Partition is the partition index the result came from.
	Partition int
	// Results holds the vectors the cohort node returned.
	Results [][]float64
}

// CoordinatorGather engages only the given partitions: the coordinator
// sends one request message per involved node, each node runs task over
// its partition (paying only for the rows the task actually reads), and
// the results stream back. Virtual time = request RTT + max per-node work
// + response transfer.
func (e *Engine) CoordinatorGather(t *storage.Table, partitions []int, task CohortTask) ([]CohortResult, metrics.Cost, error) {
	var nodeWork metrics.Cost // parallel across cohort nodes
	var respBytes int64
	var out []CohortResult
	nodesSeen := make(map[int]bool)
	rowBytes := t.RowBytes()

	for _, p := range partitions {
		rows, _, err := t.ScanPartition(p) // access; actual read cost charged below
		if err != nil {
			return nil, metrics.Cost{}, fmt.Errorf("cohort gather on %q: %w", t.Name(), err)
		}
		node, err := t.HostNode(p)
		if err != nil {
			return nil, metrics.Cost{}, fmt.Errorf("cohort gather on %q: %w", t.Name(), err)
		}
		results, rowsRead := task(rows)
		c := e.cl.ScanCost(rowsRead, rowBytes)
		if !nodesSeen[node] {
			nodesSeen[node] = true
			c = c.Add(e.cl.CohortLaunch())
			c.NodesTouched = 1
		} else {
			c.NodesTouched = 0
		}
		nodeWork = nodeWork.Merge(c)
		for _, v := range results {
			respBytes += 8 + 8*int64(len(v))
		}
		out = append(out, CohortResult{Partition: p, Results: results})
	}

	// One request message per node plus the response transfer.
	req := metrics.Cost{
		Time:     e.cl.Config().LANLatency,
		Messages: int64(len(nodesSeen)),
	}
	resp := e.cl.TransferLAN(respBytes)
	total := req.Add(nodeWork).Add(resp)
	total.RowsReturned = int64(len(out))
	return out, total, nil
}

// PartTask is executed "on" a cohort node against one partition,
// addressed by index so the task can choose its own access path (e.g. a
// columnar scan). It returns the produced result vectors and how many
// rows it actually read.
type PartTask func(p int) (results [][]float64, rowsRead int64, err error)

// CoordinatorGatherParallel is CoordinatorGather with the node-side
// work fanned out across up to GOMAXPROCS coordinator workers — the
// simulator equivalent of cohort nodes genuinely working in parallel.
// The cost model is identical to CoordinatorGather (one launch per
// involved node, per-partition scan charges merged as parallel work,
// one request message per node plus the response transfer) and is
// assembled in partition order, so costs and results are deterministic
// regardless of goroutine scheduling.
func (e *Engine) CoordinatorGatherParallel(t *storage.Table, partitions []int, task PartTask) ([]CohortResult, metrics.Cost, error) {
	type partOut struct {
		results  [][]float64
		rowsRead int64
		err      error
	}
	outs := make([]partOut, len(partitions))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(partitions) {
		workers = len(partitions)
	}
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1) - 1)
					if i >= len(partitions) {
						return
					}
					o := &outs[i]
					o.results, o.rowsRead, o.err = task(partitions[i])
				}
			}()
		}
		wg.Wait()
	} else {
		for i, p := range partitions {
			o := &outs[i]
			o.results, o.rowsRead, o.err = task(p)
		}
	}

	var nodeWork metrics.Cost // parallel across cohort nodes
	var respBytes int64
	out := make([]CohortResult, 0, len(partitions))
	nodesSeen := make(map[int]bool)
	for i, p := range partitions {
		if outs[i].err != nil {
			return nil, metrics.Cost{}, fmt.Errorf("cohort gather on %q: %w", t.Name(), outs[i].err)
		}
		node, err := t.HostNode(p)
		if err != nil {
			return nil, metrics.Cost{}, fmt.Errorf("cohort gather on %q: %w", t.Name(), err)
		}
		c := e.cl.ScanCost(outs[i].rowsRead, t.RowBytes())
		if !nodesSeen[node] {
			nodesSeen[node] = true
			c = c.Add(e.cl.CohortLaunch())
			c.NodesTouched = 1
		} else {
			c.NodesTouched = 0
		}
		nodeWork = nodeWork.Merge(c)
		for _, v := range outs[i].results {
			respBytes += 8 + 8*int64(len(v))
		}
		out = append(out, CohortResult{Partition: p, Results: outs[i].results})
	}

	req := metrics.Cost{
		Time:     e.cl.Config().LANLatency,
		Messages: int64(len(nodesSeen)),
	}
	resp := e.cl.TransferLAN(respBytes)
	total := req.Add(nodeWork).Add(resp)
	total.RowsReturned = int64(len(out))
	return out, total, nil
}

// CoordinatorPrefixGather is CoordinatorGather for sorted-run access: for
// each (partition, depth) request it reads only the first depth rows —
// the access pattern of threshold-algorithm rank joins (ref [30]).
func (e *Engine) CoordinatorPrefixGather(t *storage.Table, depths map[int]int) (map[int][]storage.Row, metrics.Cost, error) {
	out := make(map[int][]storage.Row, len(depths))
	var nodeWork metrics.Cost
	var respBytes int64
	nodesSeen := make(map[int]bool)

	parts := make([]int, 0, len(depths))
	for p := range depths {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	for _, p := range parts {
		rows, c, err := t.ScanPartitionPrefix(p, depths[p])
		if err != nil {
			return nil, metrics.Cost{}, fmt.Errorf("prefix gather on %q: %w", t.Name(), err)
		}
		node, err := t.HostNode(p)
		if err != nil {
			return nil, metrics.Cost{}, fmt.Errorf("prefix gather on %q: %w", t.Name(), err)
		}
		if !nodesSeen[node] {
			nodesSeen[node] = true
			c = c.Add(e.cl.CohortLaunch())
			c.NodesTouched = 1
		} else {
			c.NodesTouched = 0
		}
		nodeWork = nodeWork.Merge(c)
		respBytes += int64(len(rows)) * t.RowBytes()
		out[p] = rows
	}
	req := metrics.Cost{
		Time:     e.cl.Config().LANLatency,
		Messages: int64(len(nodesSeen)),
	}
	total := req.Add(nodeWork).Add(e.cl.TransferLAN(respBytes))
	return out, total, nil
}

// Segment names a half-open row range [From, To) of one partition.
type Segment struct {
	// From is the first row index to read.
	From int
	// To is one past the last row index to read.
	To int
}

// CoordinatorSegmentGather reads one row segment per partition — the
// incremental round of a threshold algorithm: each round deepens the read
// into each sorted run by a delta, paying only for the delta.
func (e *Engine) CoordinatorSegmentGather(t *storage.Table, segs map[int]Segment) (map[int][]storage.Row, metrics.Cost, error) {
	out := make(map[int][]storage.Row, len(segs))
	var nodeWork metrics.Cost
	var respBytes int64
	nodesSeen := make(map[int]bool)

	parts := make([]int, 0, len(segs))
	for p := range segs {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	for _, p := range parts {
		seg := segs[p]
		rows, c, err := t.ScanPartitionRange(p, seg.From, seg.To)
		if err != nil {
			return nil, metrics.Cost{}, fmt.Errorf("segment gather on %q: %w", t.Name(), err)
		}
		node, err := t.HostNode(p)
		if err != nil {
			return nil, metrics.Cost{}, fmt.Errorf("segment gather on %q: %w", t.Name(), err)
		}
		if !nodesSeen[node] {
			nodesSeen[node] = true
			c = c.Add(e.cl.CohortLaunch())
			c.NodesTouched = 1
		} else {
			c.NodesTouched = 0
		}
		nodeWork = nodeWork.Merge(c)
		respBytes += int64(len(rows)) * t.RowBytes()
		out[p] = rows
	}
	req := metrics.Cost{
		Time:     e.cl.Config().LANLatency,
		Messages: int64(len(nodesSeen)),
	}
	total := req.Add(nodeWork).Add(e.cl.TransferLAN(respBytes))
	return out, total, nil
}

// PointGet is a coordinator-side point lookup helper that wraps
// storage.Get with the request/response message costs.
func (e *Engine) PointGet(t *storage.Table, key uint64) (storage.Row, bool, metrics.Cost, error) {
	row, ok, c, err := t.Get(key)
	if err != nil {
		return storage.Row{}, false, c, fmt.Errorf("point get on %q: %w", t.Name(), err)
	}
	total := e.cl.TransferLAN(64).Add(c)
	if ok {
		total = total.Add(e.cl.TransferLAN(row.Bytes()))
	}
	return row, ok, total, nil
}
