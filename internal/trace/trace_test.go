package trace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndWire(t *testing.T) {
	tr := NewTracer("n0", 8)
	tr.SetSampleEvery(1)
	trace := tr.Sample("query")
	if trace == nil {
		t.Fatal("1-in-1 sampling returned no trace")
	}
	root := trace.Root()
	root.SetAttrInt("agent", 3)
	c1 := root.Child("cache_lookup")
	c1.End()
	c2 := root.Child("fallback")
	c2.Child("oracle").End()
	c2.End()
	tr.Finish(trace)

	w := trace.Wire()
	if w == nil || w.Name != "query" || w.Node != "n0" {
		t.Fatalf("wire root = %+v", w)
	}
	if got := w.SpanCount(); got != 4 {
		t.Fatalf("span count = %d, want 4", got)
	}
	if got := w.CountNamed("oracle"); got != 1 {
		t.Fatalf("oracle spans = %d, want 1", got)
	}
	if w.Attrs["agent"] != "3" {
		t.Fatalf("root attrs = %v", w.Attrs)
	}
	// The wire form must survive a JSON round trip (it crosses node
	// boundaries in /v1/partials responses).
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back WireSpan
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.SpanCount() != 4 || back.CountNamed("cache_lookup") != 1 {
		t.Fatalf("round-tripped tree = %+v", back)
	}
}

func TestAttachWireStitching(t *testing.T) {
	remote := NewSpan("partials", "n1")
	remote.Child("local_scan").End()
	remote.End()

	local := NewSpan("partial_rpc", "n0")
	local.AttachWire([]WireSpan{remote.Wire()})
	local.End()
	w := local.Wire()
	nodes := w.Nodes()
	if !nodes["n0"] || !nodes["n1"] {
		t.Fatalf("stitched tree nodes = %v, want both n0 and n1", nodes)
	}
	if w.CountNamed("local_scan") != 1 {
		t.Fatalf("remote child lost in stitching: %+v", w)
	}
}

func TestSamplingRateAndRing(t *testing.T) {
	tr := NewTracer("n0", 4)
	tr.SetSampleEvery(10)
	var sampled int
	for i := 0; i < 100; i++ {
		if trace := tr.Sample("query"); trace != nil {
			sampled++
			tr.Finish(trace)
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 100 at 1-in-10", sampled)
	}
	// The ring keeps only the most recent 4.
	ids := tr.RecentIDs()
	if len(ids) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(ids))
	}
	for _, id := range ids {
		if _, ok := tr.Get(id); !ok {
			t.Fatalf("ring id %s not retrievable", id)
		}
	}
	if _, ok := tr.Get("no-such-id"); ok {
		t.Fatal("Get returned a trace for an unknown id")
	}
	// Rate 0 turns sampling off; Force still traces.
	tr.SetSampleRate(0)
	if tr.Sample("query") != nil {
		t.Fatal("sampling off still sampled")
	}
	if tr.Force("query") == nil {
		t.Fatal("Force returned no trace with sampling off")
	}
}

func TestNilSafety(t *testing.T) {
	// Every method must no-op on nil receivers: the untraced hot path
	// threads nil spans/traces through the whole stack.
	var tr *Tracer
	if tr.Sample("q") != nil || tr.Force("q") != nil {
		t.Fatal("nil tracer produced a trace")
	}
	tr.Finish(nil)
	tr.NoteSlow("", "", "", time.Second)
	if tr.Slow(time.Hour) {
		t.Fatal("nil tracer claims slow")
	}
	var trace *Trace
	if trace.ID() != "" || trace.Root() != nil || trace.Wire() != nil {
		t.Fatal("nil trace not inert")
	}
	var sp *Span
	sp.End()
	sp.SetAttr("k", "v")
	sp.SetAttrInt("k", 1)
	sp.AttachWire([]WireSpan{{Name: "x"}})
	if c := sp.Child("c"); c != nil {
		t.Fatal("nil span produced a child")
	}
}

func TestSlowLog(t *testing.T) {
	tr := NewTracer("n0", 4)
	tr.SetSlowThreshold(10 * time.Millisecond)
	if tr.Slow(5 * time.Millisecond) {
		t.Fatal("5ms flagged slow at a 10ms threshold")
	}
	if !tr.Slow(20 * time.Millisecond) {
		t.Fatal("20ms not flagged slow")
	}
	tr.NoteSlow("id-1", "key-1", "exact_local", 20*time.Millisecond)
	log := tr.SlowLog()
	if len(log) != 1 || log[0].Key != "key-1" || log[0].Path != "exact_local" {
		t.Fatalf("slow log = %+v", log)
	}
}

func TestConcurrentChildrenAndRing(t *testing.T) {
	tr := NewTracer("n0", 16)
	var wg sync.WaitGroup
	const workers = 8
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				trace := tr.Force("query")
				sp := trace.Root()
				// Scatter workers append children concurrently in the
				// real path; hammer the same shape here.
				var inner sync.WaitGroup
				inner.Add(4)
				for k := 0; k < 4; k++ {
					go func(k int) {
						defer inner.Done()
						c := sp.Child("partial_rpc")
						c.SetAttrInt("k", int64(k))
						c.End()
					}(k)
				}
				inner.Wait()
				tr.Finish(trace)
				_, _ = tr.Get(trace.ID())
				_ = tr.RecentIDs()
			}
		}()
	}
	wg.Wait()
	if ids := tr.RecentIDs(); len(ids) != 16 {
		t.Fatalf("ring holds %d, want 16", len(ids))
	}
}
