// Package trace is the request-scoped query tracer for the answer
// path: every sampled (or ?trace=1-forced) query carries a span tree —
// route, cache lookup, model prediction, single-flight wait, vectorized
// scan, per-holder partial RPC, merge — across node boundaries. Remote
// nodes return their own span subtrees in the RPC response and the
// caller stitches them under the issuing RPC span, so one tree shows
// where a cross-shard query spent its time on every member it touched.
//
// The design constraint is the serving hot path: tracing must be free
// when off. Tracer and Span methods are nil-receiver safe, the
// per-query sampling decision is a single atomic load (plus one atomic
// add only when sampling is enabled), and an untraced query allocates
// nothing. All the bookkeeping — IDs, span nodes, the bounded ring of
// recent traces, the slow-query log — happens only on the sampled
// fraction.
package trace

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed region of a traced request. Children may be added
// concurrently (scatter-gather fans out RPC spans from worker
// goroutines), so the child list is mutex-guarded. All methods are safe
// on a nil receiver and do nothing, which is how the untraced hot path
// stays branch-cheap: callers thread a possibly-nil *Span and never
// test it.
type Span struct {
	name  string
	node  string
	start time.Time
	durNs int64

	mu       sync.Mutex
	attrs    []attr
	children []*Span
}

type attr struct{ k, v string }

// NewSpan starts a detached root span (no Tracer, no ring): remote
// handlers use it to build the subtree they return over the wire.
func NewSpan(name, node string) *Span {
	return &Span{name: name, node: node, start: time.Now()}
}

// Child starts a sub-span. Nil-safe: returns nil when s is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, node: s.node, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// ChildAt is Child with an explicit start time — for regions whose
// beginning predates the span's creation (e.g. scheduler queue wait,
// measured from enqueue but materialised when the worker picks the job
// up).
func (s *Span) ChildAt(name string, start time.Time) *Span {
	c := s.Child(name)
	if c != nil {
		c.start = start
	}
	return c
}

// End stamps the span's duration. Idempotent enough for tracing: the
// last call wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	atomic.StoreInt64(&s.durNs, int64(time.Since(s.start)))
}

// SetAttr attaches a key/value annotation.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attr{k, v})
	s.mu.Unlock()
}

// SetAttrInt attaches an integer annotation.
func (s *Span) SetAttrInt(k string, v int64) {
	s.SetAttr(k, strconv.FormatInt(v, 10))
}

// SetAttrFloat attaches a float annotation.
func (s *Span) SetAttrFloat(k string, v float64) {
	s.SetAttr(k, strconv.FormatFloat(v, 'g', 6, 64))
}

// Duration returns the recorded duration (0 until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(atomic.LoadInt64(&s.durNs))
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// AttachWire grafts wire-format spans (a remote node's subtree,
// returned in an RPC response) under s as children. Nil-safe.
func (s *Span) AttachWire(ws []WireSpan) {
	if s == nil || len(ws) == 0 {
		return
	}
	kids := make([]*Span, 0, len(ws))
	for i := range ws {
		kids = append(kids, fromWire(&ws[i]))
	}
	s.mu.Lock()
	s.children = append(s.children, kids...)
	s.mu.Unlock()
}

// WireSpan is the JSON form of a span tree: what RPC responses carry
// back for stitching and what ?trace=1 inlines in the answer.
type WireSpan struct {
	Name     string            `json:"name"`
	Node     string            `json:"node,omitempty"`
	StartNs  int64             `json:"start_unix_ns,omitempty"`
	DurNs    int64             `json:"dur_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []WireSpan        `json:"children,omitempty"`
}

// Wire converts the span tree to its wire form. Safe to call after the
// request finished; concurrent child additions during conversion are
// tolerated (the snapshot simply cuts there).
func (s *Span) Wire() WireSpan {
	if s == nil {
		return WireSpan{}
	}
	w := WireSpan{
		Name:    s.name,
		Node:    s.node,
		StartNs: s.start.UnixNano(),
		DurNs:   atomic.LoadInt64(&s.durNs),
	}
	s.mu.Lock()
	attrs := append([]attr(nil), s.attrs...)
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if len(attrs) > 0 {
		w.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			w.Attrs[a.k] = a.v
		}
	}
	for _, c := range kids {
		w.Children = append(w.Children, c.Wire())
	}
	return w
}

func fromWire(w *WireSpan) *Span {
	s := &Span{
		name:  w.Name,
		node:  w.Node,
		start: time.Unix(0, w.StartNs),
		durNs: w.DurNs,
	}
	for k, v := range w.Attrs {
		s.attrs = append(s.attrs, attr{k, v})
	}
	for i := range w.Children {
		s.children = append(s.children, fromWire(&w.Children[i]))
	}
	return s
}

// SpanCount returns the number of spans in the tree rooted at w.
func (w *WireSpan) SpanCount() int {
	n := 1
	for i := range w.Children {
		n += w.Children[i].SpanCount()
	}
	return n
}

// Nodes returns the set of distinct node ids appearing in the tree.
func (w *WireSpan) Nodes() map[string]bool {
	out := make(map[string]bool)
	var walk func(*WireSpan)
	walk = func(s *WireSpan) {
		if s.Node != "" {
			out[s.Node] = true
		}
		for i := range s.Children {
			walk(&s.Children[i])
		}
	}
	walk(w)
	return out
}

// CountNamed returns how many spans in the tree have the given name.
func (w *WireSpan) CountNamed(name string) int {
	n := 0
	if w.Name == name {
		n++
	}
	for i := range w.Children {
		n += w.Children[i].CountNamed(name)
	}
	return n
}

// Trace is one sampled request: an id plus the root span.
type Trace struct {
	id     string
	root   *Span
	forced bool
}

// ID returns the trace id ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span (nil on nil trace) — the handle request
// code threads through the answer path.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Wire converts the whole trace for JSON transport.
func (t *Trace) Wire() *WireSpan {
	if t == nil {
		return nil
	}
	w := t.root.Wire()
	return &w
}

// SlowEntry is one slow-query log record.
type SlowEntry struct {
	TraceID string        `json:"trace_id,omitempty"`
	Key     string        `json:"key"`
	Path    string        `json:"path"`
	Dur     time.Duration `json:"dur_ns"`
	At      time.Time     `json:"at"`
}

// Tracer owns the sampling decision, the bounded ring of recent traces
// and the slow-query log. The zero value (and a nil *Tracer) never
// samples; all methods are nil-safe.
type Tracer struct {
	node string

	// sampleEvery: 0 = disabled, N>0 = trace one query in N. The
	// disabled check is a single atomic load.
	sampleEvery atomic.Int64
	ctr         atomic.Int64
	idCtr       atomic.Uint64
	slowNs      atomic.Int64
	sampled     atomic.Int64
	slowCount   atomic.Int64

	mu      sync.Mutex
	ring    []*Trace
	ringPos int

	slowMu   sync.Mutex
	slowRing []SlowEntry
	slowPos  int
}

// DefaultRing is the recent-trace ring capacity when none is given.
const DefaultRing = 256

// NewTracer builds a tracer for one node/process. node labels every
// locally created span (useful once trees span members); ring bounds
// the recent-trace buffer (<=0 takes DefaultRing).
func NewTracer(node string, ring int) *Tracer {
	if ring <= 0 {
		ring = DefaultRing
	}
	return &Tracer{node: node, ring: make([]*Trace, 0, ring)}
}

// SetSampleRate configures the sampled fraction: rate <= 0 disables,
// otherwise one query in round(1/rate) is traced (rate >= 1 traces
// everything).
func (t *Tracer) SetSampleRate(rate float64) {
	if t == nil {
		return
	}
	switch {
	case rate <= 0:
		t.sampleEvery.Store(0)
	case rate >= 1:
		t.sampleEvery.Store(1)
	default:
		t.sampleEvery.Store(int64(1/rate + 0.5))
	}
}

// SetSampleEvery is SetSampleRate in 1-in-N form (0 disables).
func (t *Tracer) SetSampleEvery(n int64) {
	if t == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	t.sampleEvery.Store(n)
}

// SetSlowThreshold configures the slow-query log: queries slower than d
// are recorded (and counted) even when untraced. d <= 0 disables.
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t == nil {
		return
	}
	t.slowNs.Store(int64(d))
}

// Node returns the tracer's node label.
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// Sample makes the per-query sampling decision. It returns nil —
// having touched exactly one atomic — for the untraced majority, or a
// live Trace rooted at a span named name.
func (t *Tracer) Sample(name string) *Trace {
	if t == nil {
		return nil
	}
	n := t.sampleEvery.Load()
	if n == 0 {
		return nil
	}
	if n > 1 && t.ctr.Add(1)%n != 0 {
		return nil
	}
	return t.start(name, false)
}

// Force starts a trace unconditionally (?trace=1).
func (t *Tracer) Force(name string) *Trace {
	if t == nil {
		return nil
	}
	return t.start(name, true)
}

func (t *Tracer) start(name string, forced bool) *Trace {
	t.sampled.Add(1)
	id := t.node + "-" + strconv.FormatUint(t.idCtr.Add(1), 16)
	return &Trace{id: id, root: NewSpan(name, t.node), forced: forced}
}

// Finish ends the trace's root span and publishes it in the
// recent-trace ring. Nil-safe; the trace stays readable afterwards
// (?trace=1 serialises it after Finish).
func (t *Tracer) Finish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	tr.root.End()
	t.mu.Lock()
	if cap(t.ring) == 0 {
		t.mu.Unlock()
		return
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.ringPos] = tr
		t.ringPos = (t.ringPos + 1) % cap(t.ring)
	}
	t.mu.Unlock()
}

// Get returns the wire form of a ringed trace by id.
func (t *Tracer) Get(id string) (*WireSpan, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	var found *Trace
	for _, tr := range t.ring {
		if tr.id == id {
			found = tr
			break
		}
	}
	t.mu.Unlock()
	if found == nil {
		return nil, false
	}
	return found.Wire(), true
}

// RecentIDs lists the ids currently in the ring, newest last.
func (t *Tracer) RecentIDs() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.ring))
	// Ring order: ringPos..end are oldest when full.
	for i := 0; i < len(t.ring); i++ {
		idx := i
		if len(t.ring) == cap(t.ring) {
			idx = (t.ringPos + i) % len(t.ring)
		}
		out = append(out, t.ring[idx].id)
	}
	return out
}

// Slow reports whether d crosses the slow-query threshold — one atomic
// load, so the hot path can ask on every query.
func (t *Tracer) Slow(d time.Duration) bool {
	if t == nil {
		return false
	}
	th := t.slowNs.Load()
	return th > 0 && int64(d) >= th
}

// NoteSlow records one slow query (key is the canonical query key,
// path the answer path it took, id the trace id when it was also
// traced). Callers gate on Slow first; this path allocates.
func (t *Tracer) NoteSlow(id, key, path string, d time.Duration) {
	if t == nil {
		return
	}
	t.slowCount.Add(1)
	e := SlowEntry{TraceID: id, Key: key, Path: path, Dur: d, At: time.Now()}
	t.slowMu.Lock()
	if cap(t.slowRing) == 0 {
		t.slowRing = make([]SlowEntry, 0, 64)
	}
	if len(t.slowRing) < cap(t.slowRing) {
		t.slowRing = append(t.slowRing, e)
	} else {
		t.slowRing[t.slowPos] = e
		t.slowPos = (t.slowPos + 1) % cap(t.slowRing)
	}
	t.slowMu.Unlock()
}

// SlowLog returns the buffered slow-query entries, oldest first.
func (t *Tracer) SlowLog() []SlowEntry {
	if t == nil {
		return nil
	}
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	out := make([]SlowEntry, 0, len(t.slowRing))
	for i := 0; i < len(t.slowRing); i++ {
		idx := i
		if len(t.slowRing) == cap(t.slowRing) {
			idx = (t.slowPos + i) % len(t.slowRing)
		}
		out = append(out, t.slowRing[idx])
	}
	return out
}

// Counters reports lifetime sampled-trace and slow-query counts.
func (t *Tracer) Counters() (sampled, slow int64) {
	if t == nil {
		return 0, 0
	}
	return t.sampled.Load(), t.slowCount.Load()
}
